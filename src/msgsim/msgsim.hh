/**
 * @file
 * Umbrella header: the whole msgsim public API in one include.
 *
 *     #include "msgsim/msgsim.hh"
 *
 * Layering (bottom-up): core accounting -> simulation kernel ->
 * network substrates and NI -> machine -> messaging layers (CMAM,
 * high-level) -> protocols -> user libraries (message passing,
 * collectives, RPC) -> analytic model and workloads.
 */

#ifndef MSGSIM_MSGSIM_HH
#define MSGSIM_MSGSIM_HH

// Core accounting.
#include "core/accounting.hh"
#include "core/cost_model.hh"
#include "core/counter.hh"
#include "core/op.hh"
#include "core/report.hh"
#include "core/row.hh"
#include "core/types.hh"

// Simulation kernel.
#include "sim/event.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

// Network substrates and interface.
#include "cm5net/cm5_network.hh"
#include "crnet/cr_network.hh"
#include "net/fault.hh"
#include "net/network.hh"
#include "net/order.hh"
#include "net/packet.hh"
#include "net/topology.hh"
#include "net/tracer.hh"
#include "ni/net_iface.hh"

// Machine.
#include "machine/machine.hh"
#include "machine/memory.hh"
#include "machine/node.hh"
#include "machine/processor.hh"

// Messaging layers.
#include "cmam/cmam.hh"
#include "cmam/segment.hh"
#include "cmam/send_path.hh"
#include "hlam/hl_layer.hh"
#include "hlam/hl_stack.hh"

// Protocols and stacks.
#include "protocols/finite_xfer.hh"
#include "protocols/result.hh"
#include "protocols/rpc.hh"
#include "protocols/single_packet.hh"
#include "protocols/socket.hh"
#include "protocols/stack.hh"
#include "protocols/stream.hh"

// User-level libraries.
#include "coll/collectives.hh"
#include "msglib/msg_passing.hh"

// Analysis.
#include "model/analytic.hh"
#include "model/traffic_model.hh"
#include "traffic/engine.hh"
#include "traffic/traffic.hh"

#endif // MSGSIM_MSGSIM_HH

file(REMOVE_RECURSE
  "CMakeFiles/test_msglib.dir/test_msglib.cc.o"
  "CMakeFiles/test_msglib.dir/test_msglib.cc.o.d"
  "test_msglib"
  "test_msglib.pdb"
  "test_msglib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msglib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_msglib.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cmam.dir/test_cmam.cc.o"
  "CMakeFiles/test_cmam.dir/test_cmam.cc.o.d"
  "test_cmam"
  "test_cmam.pdb"
  "test_cmam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_cmam.
# This may be replaced when dependencies are built.

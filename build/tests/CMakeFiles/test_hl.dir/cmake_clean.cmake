file(REMOVE_RECURSE
  "CMakeFiles/test_hl.dir/test_hl.cc.o"
  "CMakeFiles/test_hl.dir/test_hl.cc.o.d"
  "test_hl"
  "test_hl.pdb"
  "test_hl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_hl.
# This may be replaced when dependencies are built.

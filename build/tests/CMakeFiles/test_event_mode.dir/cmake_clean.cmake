file(REMOVE_RECURSE
  "CMakeFiles/test_event_mode.dir/test_event_mode.cc.o"
  "CMakeFiles/test_event_mode.dir/test_event_mode.cc.o.d"
  "test_event_mode"
  "test_event_mode.pdb"
  "test_event_mode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_model_vs_sim.dir/test_model_vs_sim.cc.o"
  "CMakeFiles/test_model_vs_sim.dir/test_model_vs_sim.cc.o.d"
  "test_model_vs_sim"
  "test_model_vs_sim.pdb"
  "test_model_vs_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_edges.cc" "tests/CMakeFiles/test_edges.dir/test_edges.cc.o" "gcc" "tests/CMakeFiles/test_edges.dir/test_edges.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/msgsim_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/hlam/CMakeFiles/msgsim_hlam.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/msgsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/msglib/CMakeFiles/msgsim_msglib.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/msgsim_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/msgsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cmam/CMakeFiles/msgsim_cmam.dir/DependInfo.cmake"
  "/root/repo/build/src/cm5net/CMakeFiles/msgsim_cm5net.dir/DependInfo.cmake"
  "/root/repo/build/src/crnet/CMakeFiles/msgsim_crnet.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/msgsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ni/CMakeFiles/msgsim_ni.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msgsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msgsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msgsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_socket.dir/test_socket.cc.o"
  "CMakeFiles/test_socket.dir/test_socket.cc.o.d"
  "test_socket"
  "test_socket.pdb"
  "test_socket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

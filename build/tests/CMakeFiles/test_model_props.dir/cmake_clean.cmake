file(REMOVE_RECURSE
  "CMakeFiles/test_model_props.dir/test_model_props.cc.o"
  "CMakeFiles/test_model_props.dir/test_model_props.cc.o.d"
  "test_model_props"
  "test_model_props.pdb"
  "test_model_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_model_props.
# This may be replaced when dependencies are built.

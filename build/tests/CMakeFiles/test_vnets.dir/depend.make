# Empty dependencies file for test_vnets.
# This may be replaced when dependencies are built.

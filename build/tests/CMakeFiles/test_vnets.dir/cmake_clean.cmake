file(REMOVE_RECURSE
  "CMakeFiles/test_vnets.dir/test_vnets.cc.o"
  "CMakeFiles/test_vnets.dir/test_vnets.cc.o.d"
  "test_vnets"
  "test_vnets.pdb"
  "test_vnets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vnets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_counter[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_networks[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_cmam[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_hl[1]_include.cmake")
include("/root/repo/build/tests/test_model_vs_sim[1]_include.cmake")
include("/root/repo/build/tests/test_event_mode[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_msglib[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_bandwidth[1]_include.cmake")
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_costs[1]_include.cmake")
include("/root/repo/build/tests/test_model_props[1]_include.cmake")
include("/root/repo/build/tests/test_vnets[1]_include.cmake")
include("/root/repo/build/tests/test_edges[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_socket[1]_include.cmake")
include("/root/repo/build/tests/test_cross_substrate[1]_include.cmake")

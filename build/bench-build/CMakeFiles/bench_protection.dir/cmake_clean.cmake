file(REMOVE_RECURSE
  "../bench/bench_protection"
  "../bench/bench_protection.pdb"
  "CMakeFiles/bench_protection.dir/bench_protection.cc.o"
  "CMakeFiles/bench_protection.dir/bench_protection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ooo"
  "../bench/bench_ooo.pdb"
  "CMakeFiles/bench_ooo.dir/bench_ooo.cc.o"
  "CMakeFiles/bench_ooo.dir/bench_ooo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

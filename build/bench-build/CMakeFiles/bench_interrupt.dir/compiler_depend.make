# Empty compiler generated dependencies file for bench_interrupt.
# This may be replaced when dependencies are built.

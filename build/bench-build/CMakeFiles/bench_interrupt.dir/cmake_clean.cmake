file(REMOVE_RECURSE
  "../bench/bench_interrupt"
  "../bench/bench_interrupt.pdb"
  "CMakeFiles/bench_interrupt.dir/bench_interrupt.cc.o"
  "CMakeFiles/bench_interrupt.dir/bench_interrupt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

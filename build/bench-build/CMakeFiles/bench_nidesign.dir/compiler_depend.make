# Empty compiler generated dependencies file for bench_nidesign.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_nidesign"
  "../bench/bench_nidesign.pdb"
  "CMakeFiles/bench_nidesign.dir/bench_nidesign.cc.o"
  "CMakeFiles/bench_nidesign.dir/bench_nidesign.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nidesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_groupack.
# This may be replaced when dependencies are built.

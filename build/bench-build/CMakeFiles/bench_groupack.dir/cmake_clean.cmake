file(REMOVE_RECURSE
  "../bench/bench_groupack"
  "../bench/bench_groupack.pdb"
  "CMakeFiles/bench_groupack.dir/bench_groupack.cc.o"
  "CMakeFiles/bench_groupack.dir/bench_groupack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groupack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

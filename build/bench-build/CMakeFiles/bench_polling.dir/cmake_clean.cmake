file(REMOVE_RECURSE
  "../bench/bench_polling"
  "../bench/bench_polling.pdb"
  "CMakeFiles/bench_polling.dir/bench_polling.cc.o"
  "CMakeFiles/bench_polling.dir/bench_polling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for msgsim_msglib.
# This may be replaced when dependencies are built.

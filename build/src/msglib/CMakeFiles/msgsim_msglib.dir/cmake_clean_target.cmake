file(REMOVE_RECURSE
  "libmsgsim_msglib.a"
)

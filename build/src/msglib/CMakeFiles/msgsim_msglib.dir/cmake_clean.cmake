file(REMOVE_RECURSE
  "CMakeFiles/msgsim_msglib.dir/msg_passing.cc.o"
  "CMakeFiles/msgsim_msglib.dir/msg_passing.cc.o.d"
  "libmsgsim_msglib.a"
  "libmsgsim_msglib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_msglib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

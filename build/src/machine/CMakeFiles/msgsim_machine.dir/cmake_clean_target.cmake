file(REMOVE_RECURSE
  "libmsgsim_machine.a"
)

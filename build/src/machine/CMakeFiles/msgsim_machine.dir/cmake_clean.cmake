file(REMOVE_RECURSE
  "CMakeFiles/msgsim_machine.dir/machine.cc.o"
  "CMakeFiles/msgsim_machine.dir/machine.cc.o.d"
  "libmsgsim_machine.a"
  "libmsgsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for msgsim_machine.
# This may be replaced when dependencies are built.

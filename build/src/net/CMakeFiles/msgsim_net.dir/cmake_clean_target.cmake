file(REMOVE_RECURSE
  "libmsgsim_net.a"
)

# Empty compiler generated dependencies file for msgsim_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_net.dir/fault.cc.o"
  "CMakeFiles/msgsim_net.dir/fault.cc.o.d"
  "CMakeFiles/msgsim_net.dir/network.cc.o"
  "CMakeFiles/msgsim_net.dir/network.cc.o.d"
  "CMakeFiles/msgsim_net.dir/order.cc.o"
  "CMakeFiles/msgsim_net.dir/order.cc.o.d"
  "CMakeFiles/msgsim_net.dir/packet.cc.o"
  "CMakeFiles/msgsim_net.dir/packet.cc.o.d"
  "CMakeFiles/msgsim_net.dir/topology.cc.o"
  "CMakeFiles/msgsim_net.dir/topology.cc.o.d"
  "CMakeFiles/msgsim_net.dir/tracer.cc.o"
  "CMakeFiles/msgsim_net.dir/tracer.cc.o.d"
  "libmsgsim_net.a"
  "libmsgsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

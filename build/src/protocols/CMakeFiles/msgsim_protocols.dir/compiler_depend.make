# Empty compiler generated dependencies file for msgsim_protocols.
# This may be replaced when dependencies are built.

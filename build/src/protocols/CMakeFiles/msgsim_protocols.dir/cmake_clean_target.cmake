file(REMOVE_RECURSE
  "libmsgsim_protocols.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/finite_xfer.cc" "src/protocols/CMakeFiles/msgsim_protocols.dir/finite_xfer.cc.o" "gcc" "src/protocols/CMakeFiles/msgsim_protocols.dir/finite_xfer.cc.o.d"
  "/root/repo/src/protocols/rpc.cc" "src/protocols/CMakeFiles/msgsim_protocols.dir/rpc.cc.o" "gcc" "src/protocols/CMakeFiles/msgsim_protocols.dir/rpc.cc.o.d"
  "/root/repo/src/protocols/single_packet.cc" "src/protocols/CMakeFiles/msgsim_protocols.dir/single_packet.cc.o" "gcc" "src/protocols/CMakeFiles/msgsim_protocols.dir/single_packet.cc.o.d"
  "/root/repo/src/protocols/socket.cc" "src/protocols/CMakeFiles/msgsim_protocols.dir/socket.cc.o" "gcc" "src/protocols/CMakeFiles/msgsim_protocols.dir/socket.cc.o.d"
  "/root/repo/src/protocols/stack.cc" "src/protocols/CMakeFiles/msgsim_protocols.dir/stack.cc.o" "gcc" "src/protocols/CMakeFiles/msgsim_protocols.dir/stack.cc.o.d"
  "/root/repo/src/protocols/stream.cc" "src/protocols/CMakeFiles/msgsim_protocols.dir/stream.cc.o" "gcc" "src/protocols/CMakeFiles/msgsim_protocols.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cmam/CMakeFiles/msgsim_cmam.dir/DependInfo.cmake"
  "/root/repo/build/src/cm5net/CMakeFiles/msgsim_cm5net.dir/DependInfo.cmake"
  "/root/repo/build/src/crnet/CMakeFiles/msgsim_crnet.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/msgsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ni/CMakeFiles/msgsim_ni.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/msgsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msgsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msgsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_protocols.dir/finite_xfer.cc.o"
  "CMakeFiles/msgsim_protocols.dir/finite_xfer.cc.o.d"
  "CMakeFiles/msgsim_protocols.dir/rpc.cc.o"
  "CMakeFiles/msgsim_protocols.dir/rpc.cc.o.d"
  "CMakeFiles/msgsim_protocols.dir/single_packet.cc.o"
  "CMakeFiles/msgsim_protocols.dir/single_packet.cc.o.d"
  "CMakeFiles/msgsim_protocols.dir/socket.cc.o"
  "CMakeFiles/msgsim_protocols.dir/socket.cc.o.d"
  "CMakeFiles/msgsim_protocols.dir/stack.cc.o"
  "CMakeFiles/msgsim_protocols.dir/stack.cc.o.d"
  "CMakeFiles/msgsim_protocols.dir/stream.cc.o"
  "CMakeFiles/msgsim_protocols.dir/stream.cc.o.d"
  "libmsgsim_protocols.a"
  "libmsgsim_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

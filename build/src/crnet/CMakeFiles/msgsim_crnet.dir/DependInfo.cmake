
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crnet/cr_network.cc" "src/crnet/CMakeFiles/msgsim_crnet.dir/cr_network.cc.o" "gcc" "src/crnet/CMakeFiles/msgsim_crnet.dir/cr_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/msgsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msgsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msgsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for msgsim_crnet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmsgsim_crnet.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_crnet.dir/cr_network.cc.o"
  "CMakeFiles/msgsim_crnet.dir/cr_network.cc.o.d"
  "libmsgsim_crnet.a"
  "libmsgsim_crnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_crnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmsgsim_sim.a"
)

# Empty compiler generated dependencies file for msgsim_sim.
# This may be replaced when dependencies are built.

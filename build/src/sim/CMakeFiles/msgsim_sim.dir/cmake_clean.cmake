file(REMOVE_RECURSE
  "CMakeFiles/msgsim_sim.dir/event.cc.o"
  "CMakeFiles/msgsim_sim.dir/event.cc.o.d"
  "CMakeFiles/msgsim_sim.dir/log.cc.o"
  "CMakeFiles/msgsim_sim.dir/log.cc.o.d"
  "libmsgsim_sim.a"
  "libmsgsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_workload.dir/traffic.cc.o"
  "CMakeFiles/msgsim_workload.dir/traffic.cc.o.d"
  "libmsgsim_workload.a"
  "libmsgsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmsgsim_workload.a"
)

# Empty dependencies file for msgsim_workload.
# This may be replaced when dependencies are built.

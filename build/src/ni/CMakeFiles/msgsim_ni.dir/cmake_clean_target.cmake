file(REMOVE_RECURSE
  "libmsgsim_ni.a"
)

# Empty dependencies file for msgsim_ni.
# This may be replaced when dependencies are built.

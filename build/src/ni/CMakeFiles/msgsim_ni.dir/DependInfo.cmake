
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ni/net_iface.cc" "src/ni/CMakeFiles/msgsim_ni.dir/net_iface.cc.o" "gcc" "src/ni/CMakeFiles/msgsim_ni.dir/net_iface.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/msgsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msgsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msgsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_ni.dir/net_iface.cc.o"
  "CMakeFiles/msgsim_ni.dir/net_iface.cc.o.d"
  "libmsgsim_ni.a"
  "libmsgsim_ni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_ni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

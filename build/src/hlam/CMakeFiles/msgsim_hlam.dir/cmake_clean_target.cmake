file(REMOVE_RECURSE
  "libmsgsim_hlam.a"
)

# Empty dependencies file for msgsim_hlam.
# This may be replaced when dependencies are built.

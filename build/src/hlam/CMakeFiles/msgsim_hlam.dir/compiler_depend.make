# Empty compiler generated dependencies file for msgsim_hlam.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_hlam.dir/hl_layer.cc.o"
  "CMakeFiles/msgsim_hlam.dir/hl_layer.cc.o.d"
  "CMakeFiles/msgsim_hlam.dir/hl_stack.cc.o"
  "CMakeFiles/msgsim_hlam.dir/hl_stack.cc.o.d"
  "libmsgsim_hlam.a"
  "libmsgsim_hlam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_hlam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

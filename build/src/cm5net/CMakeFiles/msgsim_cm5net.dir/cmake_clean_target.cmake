file(REMOVE_RECURSE
  "libmsgsim_cm5net.a"
)

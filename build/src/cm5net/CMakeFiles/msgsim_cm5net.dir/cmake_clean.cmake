file(REMOVE_RECURSE
  "CMakeFiles/msgsim_cm5net.dir/cm5_network.cc.o"
  "CMakeFiles/msgsim_cm5net.dir/cm5_network.cc.o.d"
  "libmsgsim_cm5net.a"
  "libmsgsim_cm5net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_cm5net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

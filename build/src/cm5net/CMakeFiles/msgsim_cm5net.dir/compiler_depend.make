# Empty compiler generated dependencies file for msgsim_cm5net.
# This may be replaced when dependencies are built.

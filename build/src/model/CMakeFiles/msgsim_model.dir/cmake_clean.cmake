file(REMOVE_RECURSE
  "CMakeFiles/msgsim_model.dir/analytic.cc.o"
  "CMakeFiles/msgsim_model.dir/analytic.cc.o.d"
  "libmsgsim_model.a"
  "libmsgsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmsgsim_model.a"
)

# Empty compiler generated dependencies file for msgsim_model.
# This may be replaced when dependencies are built.

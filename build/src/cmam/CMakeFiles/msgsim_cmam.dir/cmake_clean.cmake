file(REMOVE_RECURSE
  "CMakeFiles/msgsim_cmam.dir/cmam.cc.o"
  "CMakeFiles/msgsim_cmam.dir/cmam.cc.o.d"
  "CMakeFiles/msgsim_cmam.dir/segment.cc.o"
  "CMakeFiles/msgsim_cmam.dir/segment.cc.o.d"
  "CMakeFiles/msgsim_cmam.dir/send_path.cc.o"
  "CMakeFiles/msgsim_cmam.dir/send_path.cc.o.d"
  "libmsgsim_cmam.a"
  "libmsgsim_cmam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_cmam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for msgsim_cmam.
# This may be replaced when dependencies are built.

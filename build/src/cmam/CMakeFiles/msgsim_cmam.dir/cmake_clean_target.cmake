file(REMOVE_RECURSE
  "libmsgsim_cmam.a"
)

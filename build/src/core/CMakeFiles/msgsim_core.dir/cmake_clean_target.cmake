file(REMOVE_RECURSE
  "libmsgsim_core.a"
)

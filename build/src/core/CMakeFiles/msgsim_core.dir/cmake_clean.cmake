file(REMOVE_RECURSE
  "CMakeFiles/msgsim_core.dir/cost_model.cc.o"
  "CMakeFiles/msgsim_core.dir/cost_model.cc.o.d"
  "CMakeFiles/msgsim_core.dir/counter.cc.o"
  "CMakeFiles/msgsim_core.dir/counter.cc.o.d"
  "CMakeFiles/msgsim_core.dir/op.cc.o"
  "CMakeFiles/msgsim_core.dir/op.cc.o.d"
  "CMakeFiles/msgsim_core.dir/report.cc.o"
  "CMakeFiles/msgsim_core.dir/report.cc.o.d"
  "CMakeFiles/msgsim_core.dir/row.cc.o"
  "CMakeFiles/msgsim_core.dir/row.cc.o.d"
  "libmsgsim_core.a"
  "libmsgsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

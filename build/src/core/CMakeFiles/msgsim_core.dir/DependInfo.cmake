
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/msgsim_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/msgsim_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/counter.cc" "src/core/CMakeFiles/msgsim_core.dir/counter.cc.o" "gcc" "src/core/CMakeFiles/msgsim_core.dir/counter.cc.o.d"
  "/root/repo/src/core/op.cc" "src/core/CMakeFiles/msgsim_core.dir/op.cc.o" "gcc" "src/core/CMakeFiles/msgsim_core.dir/op.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/msgsim_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/msgsim_core.dir/report.cc.o.d"
  "/root/repo/src/core/row.cc" "src/core/CMakeFiles/msgsim_core.dir/row.cc.o" "gcc" "src/core/CMakeFiles/msgsim_core.dir/row.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for msgsim_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for msgsim_coll.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/msgsim_coll.dir/collectives.cc.o"
  "CMakeFiles/msgsim_coll.dir/collectives.cc.o.d"
  "libmsgsim_coll.a"
  "libmsgsim_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsim_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmsgsim_coll.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stream_channel.dir/stream_channel.cpp.o"
  "CMakeFiles/stream_channel.dir/stream_channel.cpp.o.d"
  "stream_channel"
  "stream_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

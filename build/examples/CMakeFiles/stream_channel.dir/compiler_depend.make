# Empty compiler generated dependencies file for stream_channel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/netdesign_explorer.dir/netdesign_explorer.cpp.o"
  "CMakeFiles/netdesign_explorer.dir/netdesign_explorer.cpp.o.d"
  "netdesign_explorer"
  "netdesign_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netdesign_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for netdesign_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ping_pong.dir/ping_pong.cpp.o"
  "CMakeFiles/ping_pong.dir/ping_pong.cpp.o.d"
  "ping_pong"
  "ping_pong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ping_pong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

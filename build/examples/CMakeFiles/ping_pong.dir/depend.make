# Empty dependencies file for ping_pong.
# This may be replaced when dependencies are built.

/**
 * @file
 * Unit tests of the simulation kernel: event queue ordering,
 * deterministic RNG, and statistics collectors.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace msgsim
{
namespace
{

TEST(EventQueue, OrdersByTimeThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(3); });
    q.schedule(1, [&] { order.push_back(4); });

    while (!q.empty()) {
        Tick t;
        q.pop(t)();
    }
    EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3}));
}

TEST(Simulator, ClockAdvancesToEventTime)
{
    Simulator sim;
    Tick seen = 0;
    sim.schedule(42, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(sim.now(), 42u);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, NestedScheduling)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] {
        ++fired;
        sim.schedule(1, [&] {
            ++fired;
            sim.schedule(1, [&] { ++fired; });
        });
    });
    const auto executed = sim.run();
    EXPECT_EQ(executed, 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(sim.now(), 3u);
}

TEST(Simulator, RunUntilPredicate)
{
    Simulator sim;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        sim.schedule(static_cast<Tick>(i + 1), [&] { ++count; });
    const bool hit = sim.runUntil([&] { return count == 4; });
    EXPECT_TRUE(hit);
    EXPECT_EQ(count, 4);
    // Remaining events still pending.
    EXPECT_FALSE(sim.idle());
}

TEST(Simulator, MaxEventsBound)
{
    Simulator sim;
    // A self-perpetuating event chain: the bound must stop it.
    std::function<void()> loop = [&] { sim.schedule(1, loop); };
    sim.schedule(1, loop);
    const auto executed = sim.run(1000);
    EXPECT_EQ(executed, 1000u);
}

TEST(Rng, DeterministicAcrossReseed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    a.reseed(123);
    Rng c(123);
    EXPECT_EQ(a.next(), c.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, ShufflePreservesMultiset)
{
    Rng r(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    auto resorted = v;
    std::sort(resorted.begin(), resorted.end());
    EXPECT_EQ(resorted, sorted);
}

TEST(RunningStat, MeanVarianceExtrema)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Histogram, BinningAndSaturation)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.5);   // bin 0
    h.sample(3.0);   // bin 1
    h.sample(9.99);  // bin 4
    h.sample(-5.0);  // clamps to bin 0
    h.sample(123.0); // clamps to bin 4
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[4], 2u);
    EXPECT_EQ(h.stat().count(), 5u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the src/lab experiment engine: JSON round-tripping, glob
 * selection, deterministic parallel sweeps (-j 1 vs -j 8 must be
 * byte-identical), golden-cell mismatch reporting, the committed
 * golden files themselves, and the obs::parseArgs edge cases the
 * lab CLI depends on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "lab/golden.hh"
#include "lab/registry.hh"
#include "lab/reporter.hh"
#include "lab/runner.hh"
#include "sim/obs_cli.hh"

using namespace msgsim;
using namespace msgsim::lab;

// ------------------------------------------------------------------
// Json
// ------------------------------------------------------------------

TEST(LabJson, RoundTripPreservesTypesAndOrder)
{
    Json obj;
    obj.set("name", Json(std::string("T1")));
    obj.set("count", Json(static_cast<std::int64_t>(42)));
    obj.set("frac", Json(0.25));
    obj.set("flag", Json(true));
    obj.set("gap", Json());
    Json arr;
    arr.push(Json(static_cast<std::int64_t>(1)));
    arr.push(Json(2.5));
    obj.set("xs", std::move(arr));

    const std::string text = obj.dump(2);
    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(text, back, &err)) << err;
    EXPECT_EQ(back.dump(2), text);

    // Field order is insertion order, not alphabetical.
    EXPECT_LT(text.find("\"name\""), text.find("\"count\""));
    EXPECT_LT(text.find("\"count\""), text.find("\"frac\""));

    // The int/real distinction round-trips through text.
    ASSERT_NE(back.find("count"), nullptr);
    EXPECT_EQ(back.find("count")->kind(), Json::Kind::Int);
    EXPECT_EQ(back.find("frac")->kind(), Json::Kind::Real);
    EXPECT_EQ(back.find("xs")->at(0).kind(), Json::Kind::Int);
    EXPECT_EQ(back.find("xs")->at(1).kind(), Json::Kind::Real);
}

TEST(LabJson, ParseRejectsGarbage)
{
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parse("{\"a\": }", out, &err));
    EXPECT_FALSE(Json::parse("[1, 2,]", out, &err));
    EXPECT_FALSE(Json::parse("{} trailing", out, &err));
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------------
// Registry / selection
// ------------------------------------------------------------------

TEST(LabRegistry, GlobMatch)
{
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("T*", "T2a"));
    EXPECT_TRUE(globMatch("X?", "X1"));
    EXPECT_FALSE(globMatch("X?", "X10"));
    EXPECT_TRUE(globMatch("X*0", "X10"));
    EXPECT_TRUE(globMatch("*a*", "T2a"));
    EXPECT_FALSE(globMatch("T*", "F6"));
    EXPECT_FALSE(globMatch("", "x"));
    EXPECT_TRUE(globMatch("", ""));
}

TEST(LabRegistry, BuiltinCatalogCoversTheEIndex)
{
    const auto &reg = builtinRegistry();
    for (const char *name :
         {"T1", "T2a", "T2b", "T3", "F6", "F8", "D1", "D2", "A1",
          "X1", "X2", "X3a", "X3b", "X4a", "X4b", "X5", "X6", "X7",
          "X8", "X9", "X10", "S1", "P1"})
        EXPECT_NE(reg.find(name), nullptr) << name;
    EXPECT_EQ(reg.find("nope"), nullptr);

    // Glob selection preserves registration order.
    const auto ts = reg.match("T*");
    ASSERT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts[0]->name, "T1");
    EXPECT_EQ(ts[3]->name, "T3");

    // P1 is the only wall-clock (non-deterministic) experiment.
    for (const auto &e : reg.all())
        EXPECT_EQ(e.deterministic, e.name != "P1") << e.name;
}

// ------------------------------------------------------------------
// SweepRunner determinism
// ------------------------------------------------------------------

namespace
{

/** A cheap deterministic selection exercising several experiments. */
std::vector<const Experiment *>
cheapSelection()
{
    const auto &reg = builtinRegistry();
    std::vector<const Experiment *> sel;
    for (const char *name : {"T1", "T2a", "T2b", "F6", "D2", "X10"})
        sel.push_back(reg.find(name));
    return sel;
}

std::string
renderAll(const std::vector<ResultTable> &tables)
{
    std::string out = Reporter::markdown(tables);
    for (const auto &t : tables)
        out += t.jsonText() + "\n" + t.csv() + "\n";
    return out;
}

} // namespace

TEST(LabRunner, ParallelSweepIsByteDeterministic)
{
    const auto sel = cheapSelection();

    SweepOptions o1;
    o1.jobs = 1;
    SweepRunner r1(o1);
    const auto t1 = renderAll(r1.run(sel));

    SweepOptions o8;
    o8.jobs = 8;
    SweepRunner r8(o8);
    const auto t8 = renderAll(r8.run(sel));

    // Byte-identical markdown + JSON + CSV regardless of -j.
    EXPECT_EQ(t1, t8);

    EXPECT_EQ(r1.stats().experiments, sel.size());
    EXPECT_EQ(r1.stats().pointsRun, r8.stats().pointsRun);
    EXPECT_EQ(r1.stats().rowsEmitted, r8.stats().rowsEmitted);
}

TEST(LabRunner, WorkerExceptionsPropagate)
{
    Experiment bad;
    bad.name = "bad";
    bad.title = "throws";
    bad.columns = {"x"};
    bad.points = {"a", "b", "c"};
    bad.runPoint = [](std::size_t pi) -> std::vector<Row> {
        if (pi == 1)
            throw std::runtime_error("boom");
        return {{Cell::integer(pi)}};
    };
    SweepOptions opts;
    opts.jobs = 4;
    SweepRunner runner(opts);
    std::vector<const Experiment *> sel{&bad};
    EXPECT_THROW(runner.run(sel), std::runtime_error);
}

// ------------------------------------------------------------------
// GoldenChecker
// ------------------------------------------------------------------

namespace
{

ResultTable
tinyTable()
{
    ResultTable t;
    t.name = "tiny";
    t.title = "tiny";
    t.columns = {"row", "n", "f"};
    t.addRow({Cell::text("alpha"), Cell::integer(7), Cell::real(0.5)});
    t.addRow({Cell::text("beta"), Cell::integer(9), Cell::null()});
    return t;
}

} // namespace

TEST(LabGolden, CompareAcceptsItself)
{
    const auto t = tinyTable();
    Json golden;
    std::string err;
    ASSERT_TRUE(Json::parse(t.jsonText(), golden, &err)) << err;
    const auto rep = GoldenChecker::compare(golden, t);
    EXPECT_TRUE(rep.ok) << (rep.mismatches.empty()
                                ? ""
                                : rep.mismatches.front());
    EXPECT_TRUE(rep.mismatches.empty());
}

TEST(LabGolden, CompareReportsPreciseMismatches)
{
    const auto t = tinyTable();
    Json golden;
    std::string err;
    ASSERT_TRUE(Json::parse(t.jsonText(), golden, &err)) << err;

    // Perturb one integer cell: the report names row, label, column,
    // and both values.
    auto mutated = t;
    mutated.rows[0][1] = Cell::integer(8);
    auto rep = GoldenChecker::compare(golden, mutated);
    EXPECT_FALSE(rep.ok);
    ASSERT_EQ(rep.mismatches.size(), 1u);
    EXPECT_NE(rep.mismatches[0].find("row 0"), std::string::npos);
    EXPECT_NE(rep.mismatches[0].find("'alpha'"), std::string::npos);
    EXPECT_NE(rep.mismatches[0].find("column 'n'"), std::string::npos);
    EXPECT_NE(rep.mismatches[0].find("golden 7"), std::string::npos);
    EXPECT_NE(rep.mismatches[0].find("got 8"), std::string::npos);

    // Kind changes are mismatches even when values "look" equal.
    mutated = t;
    mutated.rows[0][1] = Cell::real(7.0);
    rep = GoldenChecker::compare(golden, mutated);
    EXPECT_FALSE(rep.ok);

    // Reals tolerate only tiny relative error.
    mutated = t;
    mutated.rows[0][2] = Cell::real(0.5 * (1 + 1e-12));
    EXPECT_TRUE(GoldenChecker::compare(golden, mutated).ok);
    mutated.rows[0][2] = Cell::real(0.5001);
    EXPECT_FALSE(GoldenChecker::compare(golden, mutated).ok);

    // Row-count and column mismatches are reported.
    mutated = t;
    mutated.rows.pop_back();
    rep = GoldenChecker::compare(golden, mutated);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.mismatches[0].find("row count"), std::string::npos);

    mutated = tinyTable();
    mutated.columns[1] = "m";
    rep = GoldenChecker::compare(golden, mutated);
    EXPECT_FALSE(rep.ok);
    EXPECT_NE(rep.mismatches[0].find("column 1"), std::string::npos);
}

TEST(LabGolden, MissingGoldenFileIsFlagged)
{
    GoldenChecker checker("/nonexistent-golden-dir");
    const auto rep = checker.check(tinyTable());
    EXPECT_FALSE(rep.ok);
    EXPECT_TRUE(rep.missing);
    ASSERT_EQ(rep.mismatches.size(), 1u);
    EXPECT_NE(rep.mismatches[0].find("no golden file"),
              std::string::npos);
}

TEST(LabGolden, CommittedGoldensMatchTheSimulator)
{
    // The authoritative gate also runs as `msgsim-lab --all
    // --check-golden`; this covers a fast subset inside ctest so a
    // drifting simulator fails the tier-1 suite directly.
    const std::string dir =
        std::string(MSGSIM_SOURCE_DIR) + "/lab/golden";
    GoldenChecker checker(dir);
    SweepOptions opts;
    opts.jobs = 2;
    SweepRunner runner(opts);
    const auto tables = runner.run(cheapSelection());
    for (const auto &t : tables) {
        const auto rep = checker.check(t);
        EXPECT_TRUE(rep.ok) << (rep.mismatches.empty()
                                    ? t.name
                                    : rep.mismatches.front());
    }
}

// ------------------------------------------------------------------
// Paper-cell pins straight from the engine (independent of files).
// ------------------------------------------------------------------

TEST(LabExperiments, T1ReproducesPaperTotals)
{
    const auto *t1 = builtinRegistry().find("T1");
    ASSERT_NE(t1, nullptr);
    const auto rows = t1->runPoint(0);
    const Row *total = nullptr;
    for (const auto &r : rows)
        if (r[1].s == "Total")
            total = &r;
    ASSERT_NE(total, nullptr);
    EXPECT_EQ((*total)[2].i, 20); // paper: source 20
    EXPECT_EQ((*total)[3].i, 27); // paper: destination 27
}

TEST(LabExperiments, W1PredictsTheWholeTrafficGrid)
{
    // W1 is the golden-free analytic gate: every pattern x protocol
    // x collective row must come out "ok" with zero drift between
    // the compositional predictor and the charged run.
    const auto *w1 = builtinRegistry().find("W1");
    ASSERT_NE(w1, nullptr);
    EXPECT_TRUE(w1->deterministic);
    EXPECT_TRUE(w1->goldenExempt); // model is the reference, no file
    ASSERT_EQ(w1->points.size(), 4u); // one per substrate

    const auto cols = w1->columns;
    const std::size_t statusCol = cols.size() - 1;
    ASSERT_EQ(cols[statusCol], "status");

    for (std::size_t pi = 0; pi < w1->points.size(); ++pi) {
        const auto rows = w1->runPoint(pi);
        ASSERT_FALSE(rows.empty()) << w1->points[pi];
        for (const auto &r : rows)
            EXPECT_EQ(r[statusCol].s, "ok")
                << w1->points[pi] << " row " << r[1].s << "/"
                << r[2].s;
    }
}

TEST(LabExperiments, W1IsDeterministicPerPoint)
{
    const auto *w1 = builtinRegistry().find("W1");
    ASSERT_NE(w1, nullptr);
    ResultTable a, b;
    a.name = b.name = "W1";
    a.columns = b.columns = w1->columns;
    for (const auto &r : w1->runPoint(2)) // rdma
        a.addRow(r);
    for (const auto &r : w1->runPoint(2))
        b.addRow(r);
    EXPECT_EQ(a.jsonText(), b.jsonText());
}

TEST(LabExperiments, GoldenExemptSkipsTheFileCheck)
{
    // A deterministic experiment flagged goldenExempt must not fail
    // the golden gate just because no file exists.
    const auto *w1 = builtinRegistry().find("W1");
    ASSERT_NE(w1, nullptr);
    EXPECT_TRUE(w1->deterministic && w1->goldenExempt);
    // Every non-exempt deterministic experiment keeps a golden.
    const std::string dir =
        std::string(MSGSIM_SOURCE_DIR) + "/lab/golden";
    for (const auto &e : builtinRegistry().all()) {
        if (!e.deterministic || e.goldenExempt)
            continue;
        std::ifstream is(dir + "/" + e.name + ".json");
        EXPECT_TRUE(is.good()) << e.name;
    }
}

TEST(LabExperiments, ResultTableRendersMarkdownAndCsv)
{
    const auto t = tinyTable();
    const auto md = t.markdown();
    EXPECT_NE(md.find("| row | n | f |"), std::string::npos);
    EXPECT_NE(md.find("| alpha | 7 | 0.5 |"), std::string::npos);
    EXPECT_NE(md.find("| beta | 9 | - |"), std::string::npos);
    const auto csv = t.csv();
    EXPECT_NE(csv.find("row,n,f"), std::string::npos);
    EXPECT_NE(csv.find("alpha,7,0.5"), std::string::npos);
}

// ------------------------------------------------------------------
// obs::parseArgs edge cases (the lab CLI routes argv through it).
// ------------------------------------------------------------------

namespace
{

/** argv fixture with stable storage. */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (auto &s : strings)
            ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(strings.size());
    }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
    int argc;

    char **argv() { return ptrs.data(); }

    std::vector<std::string>
    remaining() const
    {
        std::vector<std::string> out;
        for (int i = 0; i < argc; ++i)
            out.emplace_back(ptrs[static_cast<std::size_t>(i)]);
        return out;
    }
};

} // namespace

TEST(ObsParseArgs, UnknownFlagsStayPositional)
{
    Argv a({"prog", "--unknown=x", "pos", "--trace-out=t.json"});
    const auto opts = obs::parseArgs(a.argc, a.argv());
    EXPECT_EQ(opts.traceOut, "t.json");
    EXPECT_TRUE(opts.wanted());
    EXPECT_EQ(a.remaining(),
              (std::vector<std::string>{"prog", "--unknown=x", "pos"}));
}

TEST(ObsParseArgs, FlagWithoutEqualsIsNotConsumed)
{
    // "--trace-out" (no '=') is not the flag; it must survive.
    Argv a({"prog", "--trace-out", "t.json"});
    const auto opts = obs::parseArgs(a.argc, a.argv());
    EXPECT_TRUE(opts.traceOut.empty());
    EXPECT_FALSE(opts.wanted());
    EXPECT_EQ(a.argc, 3);
}

TEST(ObsParseArgs, EmptyPathMeansOff)
{
    Argv a({"prog", "--trace-out=", "--metrics-out="});
    const auto opts = obs::parseArgs(a.argc, a.argv());
    EXPECT_TRUE(opts.traceOut.empty());
    EXPECT_TRUE(opts.metricsOut.empty());
    EXPECT_FALSE(opts.wanted());
    EXPECT_EQ(a.argc, 1); // the flags are still consumed
}

TEST(ObsParseArgs, RepeatedFlagLastWins)
{
    Argv a({"prog", "--metrics-out=first.json",
            "--metrics-out=second.json"});
    const auto opts = obs::parseArgs(a.argc, a.argv());
    EXPECT_EQ(opts.metricsOut, "second.json");
    EXPECT_EQ(a.argc, 1);
}

/**
 * @file
 * Edge-case and failure-path tests: invariant violations must panic
 * loudly (gem5 semantics), resource exhaustion must be caught, and
 * boundary configurations must behave.
 */

#include <gtest/gtest.h>

#include "hlam/hl_stack.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"
#include "sim/event.hh"

namespace msgsim
{
namespace
{

struct ThrowOnError
{
    ThrowOnError() { log_detail::throwOnError = true; }
    ~ThrowOnError() { log_detail::throwOnError = false; }
};

TEST(Edges, EventQueuePopEmptyPanics)
{
    ThrowOnError guard;
    EventQueue q;
    Tick t;
    EXPECT_THROW(q.pop(t), log_detail::SimError);
    EXPECT_THROW(q.nextTick(), log_detail::SimError);
}

TEST(Edges, ScheduleInThePastPanics)
{
    ThrowOnError guard;
    Simulator sim;
    sim.schedule(10, [] {});
    sim.run();
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_THROW(sim.scheduleAt(5, [] {}), log_detail::SimError);
}

TEST(Edges, SegmentDoubleFreePanics)
{
    ThrowOnError guard;
    Stack stack(StackConfig{});
    SegmentTable &segs = stack.cmam(0).segments();
    Processor &p = stack.node(0).proc();
    const Word id = segs.alloc(p, 0, 1);
    segs.free(p, id);
    EXPECT_THROW(segs.free(p, id), log_detail::SimError);
}

TEST(Edges, SegmentOverrunPanics)
{
    ThrowOnError guard;
    Stack stack(StackConfig{});
    SegmentTable &segs = stack.cmam(0).segments();
    Processor &p = stack.node(0).proc();
    const Word id = segs.alloc(p, 0, 1);
    EXPECT_TRUE(segs.packetArrived(p, id));
    EXPECT_THROW(segs.packetArrived(p, id), log_detail::SimError);
}

TEST(Edges, NiReadWithEmptyFifoPanics)
{
    ThrowOnError guard;
    Stack stack(StackConfig{});
    Node &n = stack.node(0);
    EXPECT_THROW(n.ni().readRecvHeader(n.acct()),
                 log_detail::SimError);
    EXPECT_THROW(n.ni().readRecvDouble(n.acct()),
                 log_detail::SimError);
}

TEST(Edges, NiDataPushWithoutCtlPanics)
{
    ThrowOnError guard;
    Stack stack(StackConfig{});
    Node &n = stack.node(0);
    EXPECT_THROW(n.ni().writeSendDouble(n.acct(), 1, 2),
                 log_detail::SimError);
}

TEST(Edges, BadVnetPanics)
{
    ThrowOnError guard;
    Stack stack(StackConfig{});
    Node &n = stack.node(0);
    EXPECT_THROW(
        n.ni().writeSendCtl(n.acct(), 1, HwTag::UserAm, 0, 4, 5),
        log_detail::SimError);
}

TEST(Edges, SmallestMachineAndMessage)
{
    // 2 nodes, one packet: the smallest meaningful configuration.
    StackConfig cfg;
    cfg.nodes = 2;
    Stack stack(cfg);
    const auto res = runSinglePacket(stack, {});
    EXPECT_TRUE(res.dataOk);
}

TEST(Edges, StreamOfOnePacket)
{
    Stack stack(StackConfig{});
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 4;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.packets, 1u);
    EXPECT_EQ(res.oooArrivals, 0u);
}

TEST(Edges, OddPacketCountWithSwapAdjacent)
{
    // The held last packet must be flushed, not stranded.
    StackConfig cfg;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 20; // 5 packets
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.oooArrivals, 2u); // two complete swapped pairs
}

TEST(Edges, HlSinglePacketTransfer)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlXferParams p;
    p.words = 4; // header packet IS the only packet
    const auto res = runHlFinite(stack, p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.packets, 1u);
}

TEST(Edges, FatTreeSingleNode)
{
    ThrowOnError guard;
    FatTree t(1, 4);
    EXPECT_EQ(t.lca(0, 0), 0u);
    EXPECT_THROW(t.lca(0, 1), log_detail::SimError);
}

TEST(Edges, TinyPacketSizeRejected)
{
    ThrowOnError guard;
    StackConfig cfg;
    cfg.dataWords = 2; // below the CMAM_4 format minimum
    EXPECT_THROW(Stack{cfg}, log_detail::SimError);
}

TEST(Edges, LargePacketSizeWorks)
{
    StackConfig cfg;
    cfg.dataWords = 128;
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 1024;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.packets, 8u);
}

TEST(Edges, UnlimitedGroupAckNeverSendsMidStream)
{
    // G larger than the stream: exactly one flush ack at the end.
    Stack stack(StackConfig{});
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 64;
    p.groupAck = 10000;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.acksSent, 1u);
}

} // namespace
} // namespace msgsim

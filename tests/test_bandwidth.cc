/**
 * @file
 * Tests of the link-bandwidth (serialization) model and the
 * kernel-mediation knob.
 */

#include <gtest/gtest.h>

#include "cm5net/cm5_network.hh"
#include "crnet/cr_network.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

TEST(Bandwidth, InjectGapSpacesDepartures)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    cfg.injectGap = 7;
    Cm5Network net(sim, cfg);

    std::vector<Tick> arrivals;
    net.attach(1, [&](Packet &&) {
        arrivals.push_back(sim.now());
        return true;
    });
    for (Word i = 0; i < 5; ++i)
        net.inject(Packet(0, 1, HwTag::UserAm, i, {1, 2, 3, 4}));
    sim.run();
    ASSERT_EQ(arrivals.size(), 5u);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i] - arrivals[i - 1], 7u);
}

TEST(Bandwidth, DeliverGapSerializesFanIn)
{
    // Two senders converge on one destination: arrivals must still be
    // spaced by the delivery gap.
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    cfg.deliverGap = 9;
    Cm5Network net(sim, cfg);

    std::vector<Tick> arrivals;
    net.attach(2, [&](Packet &&) {
        arrivals.push_back(sim.now());
        return true;
    });
    for (Word i = 0; i < 4; ++i) {
        net.inject(Packet(0, 2, HwTag::UserAm, i, {1, 2, 3, 4}));
        net.inject(Packet(1, 2, HwTag::UserAm, i, {5, 6, 7, 8}));
    }
    sim.run();
    ASSERT_EQ(arrivals.size(), 8u);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i] - arrivals[i - 1], 9u);
}

TEST(Bandwidth, CrGapsPreserveOrder)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 4;
    cfg.injectGap = 5;
    cfg.deliverGap = 5;
    cfg.faults.dropRate = 0.2;
    cfg.faults.seed = 8;
    CrNetwork net(sim, cfg);

    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 50; ++i)
        net.inject(Packet(0, 1, HwTag::StreamData, i, {i, 0, 0, 0}));
    sim.run();
    ASSERT_EQ(got.size(), 50u);
    for (Word i = 0; i < 50; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Bandwidth, StreamElapsedScalesWithGap)
{
    auto elapsed = [](Tick gap) {
        StackConfig cfg;
        cfg.nodes = 2;
        cfg.injectGap = gap;
        cfg.deliverGap = gap;
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 256;
        p.eventMode = true;
        const auto res = proto.run(p);
        EXPECT_TRUE(res.dataOk);
        return res.elapsed;
    };
    const Tick fast = elapsed(0);
    const Tick slow = elapsed(10);
    EXPECT_GT(slow, fast + 300);
}

TEST(Bandwidth, GapsDoNotChangeInstructionCounts)
{
    // Bandwidth is a hardware property; the software bill of the
    // calibration path must not move.
    auto counts = [](Tick gap) {
        StackConfig cfg;
        cfg.nodes = 2;
        cfg.order = swapAdjacentFactory();
        cfg.injectGap = gap;
        cfg.deliverGap = gap;
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 64;
        return proto.run(p).counts.paperTotal();
    };
    EXPECT_EQ(counts(0), counts(13));
}

TEST(Protection, KernelMediationAddsPerCallCost)
{
    Stack user(StackConfig{});
    const auto ru = runSinglePacket(user, {});

    StackConfig kc;
    kc.kernelMediated = true;
    Stack kernel(kc);
    const auto rk = runSinglePacket(kernel, {});

    ASSERT_TRUE(ru.dataOk);
    ASSERT_TRUE(rk.dataOk);
    // One crossing for the send, one for the poll: +120 each.
    EXPECT_EQ(rk.counts.src.paperTotal(),
              ru.counts.src.paperTotal() + 120);
    EXPECT_EQ(rk.counts.dst.paperTotal(),
              ru.counts.dst.paperTotal() + 120);
}

TEST(Protection, PerPacketCallsAmplifyTheDamage)
{
    StackConfig kc;
    kc.kernelMediated = true;
    Stack kernel(kc);
    StreamProtocol proto(kernel);
    StreamParams p;
    p.words = 64; // 16 packets = 16 kernel-mediated sends
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    // At least 16 send crossings on the source side alone.
    EXPECT_GE(res.counts.src.paperTotal(), 16u * 120u);
}

} // namespace
} // namespace msgsim

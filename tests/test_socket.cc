/**
 * @file
 * Tests of the persistent StreamSocket API: long-lived channels,
 * multiple bursts, software flow control against the retransmission
 * ring, coexisting sockets, and in-order delivery over scrambled
 * networks.
 */

#include <gtest/gtest.h>

#include "protocols/socket.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

StackConfig
scrambled()
{
    StackConfig cfg;
    cfg.nodes = 4;
    cfg.order = randomWindowFactory(6, 17);
    return cfg;
}

TEST(Socket, MultipleBurstsArriveInOrder)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::vector<Word> got;
    StreamSocket sock(proto, 0, 1,
                      [&got](const std::vector<Word> &w) {
                          got.insert(got.end(), w.begin(), w.end());
                      });

    std::vector<Word> sent;
    Rng rng(4);
    for (int burst = 0; burst < 10; ++burst) {
        std::vector<Word> words(4 * (1 + rng.below(8)));
        for (auto &w : words)
            w = static_cast<Word>(rng.next());
        sent.insert(sent.end(), words.begin(), words.end());
        sock.write(words);
    }
    sock.flush();
    EXPECT_EQ(got, sent);
    EXPECT_EQ(sock.unacked(), 0u);
}

TEST(Socket, RingExertsFlowControl)
{
    // A tiny ring: writes far beyond it must still complete (the
    // write path blocks and drains), and unacked never exceeds it.
    Stack stack(StackConfig{});
    StreamProtocol proto(stack);
    std::vector<Word> got;
    StreamSocket::Options opts;
    opts.ringPackets = 4;
    StreamSocket sock(proto, 0, 1,
                      [&got](const std::vector<Word> &w) {
                          got.insert(got.end(), w.begin(), w.end());
                      },
                      opts);

    std::vector<Word> sent(4 * 64);
    for (std::size_t i = 0; i < sent.size(); ++i)
        sent[i] = static_cast<Word>(i);
    sock.write(sent);
    EXPECT_LE(sock.unacked(), 4u);
    sock.flush();
    EXPECT_EQ(got, sent);
}

TEST(Socket, GroupAckedSocketFlushesCleanly)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::size_t delivered = 0;
    StreamSocket::Options opts;
    opts.groupAck = 8;
    opts.ringPackets = 16;
    StreamSocket sock(proto, 2, 3,
                      [&delivered](const std::vector<Word> &w) {
                          delivered += w.size();
                      },
                      opts);
    // 13 packets: not a multiple of the ack group — the flush path
    // must force the partial group's cumulative ack.
    sock.write(std::vector<Word>(4 * 13, 0xabcd));
    sock.flush();
    EXPECT_EQ(delivered, 4u * 13u);
    EXPECT_EQ(sock.unacked(), 0u);
}

TEST(Socket, TwoSocketsCoexistIncludingOppositeDirections)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::vector<Word> a_got, b_got;
    StreamSocket a(proto, 0, 1,
                   [&a_got](const std::vector<Word> &w) {
                       a_got.insert(a_got.end(), w.begin(), w.end());
                   });
    StreamSocket b(proto, 1, 0,
                   [&b_got](const std::vector<Word> &w) {
                       b_got.insert(b_got.end(), w.begin(), w.end());
                   });

    std::vector<Word> a_sent, b_sent;
    for (int round = 0; round < 6; ++round) {
        std::vector<Word> wa(8, static_cast<Word>(100 + round));
        std::vector<Word> wb(4, static_cast<Word>(200 + round));
        a.write(wa);
        b.write(wb);
        a_sent.insert(a_sent.end(), wa.begin(), wa.end());
        b_sent.insert(b_sent.end(), wb.begin(), wb.end());
    }
    a.flush();
    b.flush();
    EXPECT_EQ(a_got, a_sent);
    EXPECT_EQ(b_got, b_sent);
}

TEST(Socket, ScramblingIsAbsorbedSilently)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::size_t delivered = 0;
    StreamSocket sock(proto, 0, 3,
                      [&delivered](const std::vector<Word> &w) {
                          delivered += w.size();
                      });
    sock.write(std::vector<Word>(256, 1));
    sock.flush();
    EXPECT_EQ(delivered, 256u);
    EXPECT_GT(sock.oooArrivals(), 0u); // the network really scrambled
}

TEST(Socket, WritesChargePaperRates)
{
    // Socket traffic rides the same machinery: each packet costs the
    // source its 20-instruction send + 5 in-order + 8 fault-tol
    // (plus ack consumption when acks drain).
    Stack stack(StackConfig{});
    StreamProtocol proto(stack);
    StreamSocket sock(proto, 0, 1, nullptr);
    const InstrCounter before = stack.node(0).acct().counter();
    sock.write(std::vector<Word>(4, 9)); // one packet, no drain yet
    const auto cost = stack.node(0).acct().counter().diff(before);
    EXPECT_EQ(cost.featureTotal(Feature::BaseCost), 20u);
    EXPECT_EQ(cost.featureTotal(Feature::InOrderDelivery), 5u);
    EXPECT_EQ(cost.featureTotal(Feature::FaultTolerance), 8u);
    sock.flush();
}

} // namespace
} // namespace msgsim

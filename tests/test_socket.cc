/**
 * @file
 * Tests of the persistent StreamSocket API: long-lived channels,
 * multiple bursts, software flow control against the retransmission
 * ring, coexisting sockets, and in-order delivery over scrambled
 * networks.
 */

#include <gtest/gtest.h>

#include "cm5net/cm5_network.hh"
#include "protocols/socket.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

StackConfig
scrambled()
{
    StackConfig cfg;
    cfg.nodes = 4;
    cfg.order = randomWindowFactory(6, 17);
    return cfg;
}

TEST(Socket, MultipleBurstsArriveInOrder)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::vector<Word> got;
    StreamSocket sock(proto, 0, 1,
                      [&got](const std::vector<Word> &w) {
                          got.insert(got.end(), w.begin(), w.end());
                      });

    std::vector<Word> sent;
    Rng rng(4);
    for (int burst = 0; burst < 10; ++burst) {
        std::vector<Word> words(4 * (1 + rng.below(8)));
        for (auto &w : words)
            w = static_cast<Word>(rng.next());
        sent.insert(sent.end(), words.begin(), words.end());
        sock.write(words);
    }
    sock.flush();
    EXPECT_EQ(got, sent);
    EXPECT_EQ(sock.unacked(), 0u);
}

TEST(Socket, RingExertsFlowControl)
{
    // A tiny ring: writes far beyond it must still complete (the
    // write path blocks and drains), and unacked never exceeds it.
    Stack stack(StackConfig{});
    StreamProtocol proto(stack);
    std::vector<Word> got;
    StreamSocket::Options opts;
    opts.ringPackets = 4;
    StreamSocket sock(proto, 0, 1,
                      [&got](const std::vector<Word> &w) {
                          got.insert(got.end(), w.begin(), w.end());
                      },
                      opts);

    std::vector<Word> sent(4 * 64);
    for (std::size_t i = 0; i < sent.size(); ++i)
        sent[i] = static_cast<Word>(i);
    sock.write(sent);
    EXPECT_LE(sock.unacked(), 4u);
    sock.flush();
    EXPECT_EQ(got, sent);
}

TEST(Socket, GroupAckedSocketFlushesCleanly)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::size_t delivered = 0;
    StreamSocket::Options opts;
    opts.groupAck = 8;
    opts.ringPackets = 16;
    StreamSocket sock(proto, 2, 3,
                      [&delivered](const std::vector<Word> &w) {
                          delivered += w.size();
                      },
                      opts);
    // 13 packets: not a multiple of the ack group — the flush path
    // must force the partial group's cumulative ack.
    sock.write(std::vector<Word>(4 * 13, 0xabcd));
    sock.flush();
    EXPECT_EQ(delivered, 4u * 13u);
    EXPECT_EQ(sock.unacked(), 0u);
}

TEST(Socket, TwoSocketsCoexistIncludingOppositeDirections)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::vector<Word> a_got, b_got;
    StreamSocket a(proto, 0, 1,
                   [&a_got](const std::vector<Word> &w) {
                       a_got.insert(a_got.end(), w.begin(), w.end());
                   });
    StreamSocket b(proto, 1, 0,
                   [&b_got](const std::vector<Word> &w) {
                       b_got.insert(b_got.end(), w.begin(), w.end());
                   });

    std::vector<Word> a_sent, b_sent;
    for (int round = 0; round < 6; ++round) {
        std::vector<Word> wa(8, static_cast<Word>(100 + round));
        std::vector<Word> wb(4, static_cast<Word>(200 + round));
        a.write(wa);
        b.write(wb);
        a_sent.insert(a_sent.end(), wa.begin(), wa.end());
        b_sent.insert(b_sent.end(), wb.begin(), wb.end());
    }
    a.flush();
    b.flush();
    EXPECT_EQ(a_got, a_sent);
    EXPECT_EQ(b_got, b_sent);
}

TEST(Socket, ScramblingIsAbsorbedSilently)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::size_t delivered = 0;
    StreamSocket sock(proto, 0, 3,
                      [&delivered](const std::vector<Word> &w) {
                          delivered += w.size();
                      });
    sock.write(std::vector<Word>(256, 1));
    sock.flush();
    EXPECT_EQ(delivered, 256u);
    EXPECT_GT(sock.oooArrivals(), 0u); // the network really scrambled
}

TEST(Socket, WritesChargePaperRates)
{
    // Socket traffic rides the same machinery: each packet costs the
    // source its 20-instruction send + 5 in-order + 8 fault-tol
    // (plus ack consumption when acks drain).
    Stack stack(StackConfig{});
    StreamProtocol proto(stack);
    StreamSocket sock(proto, 0, 1, nullptr);
    const InstrCounter before = stack.node(0).acct().counter();
    sock.write(std::vector<Word>(4, 9)); // one packet, no drain yet
    const auto cost = stack.node(0).acct().counter().diff(before);
    EXPECT_EQ(cost.featureTotal(Feature::BaseCost), 20u);
    EXPECT_EQ(cost.featureTotal(Feature::InOrderDelivery), 5u);
    EXPECT_EQ(cost.featureTotal(Feature::FaultTolerance), 8u);
    sock.flush();
}

TEST(Socket, CloseWithPacketsInFlightTearsDownCleanly)
{
    // close() with unconsumed acks and undelivered packets still in
    // the network must drain the retransmission ring, wait for the
    // final acks, and only then retire the channel.
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::vector<Word> got;
    StreamSocket sock(proto, 0, 1,
                      [&got](const std::vector<Word> &w) {
                          got.insert(got.end(), w.begin(), w.end());
                      });

    std::vector<Word> sent(4 * 24);
    for (std::size_t i = 0; i < sent.size(); ++i)
        sent[i] = static_cast<Word>(0xf00d0000 + i);
    sock.write(sent);
    ASSERT_TRUE(sock.isOpen());
    // No flush: the write leaves acks (and possibly data) in flight.
    sock.close();

    EXPECT_FALSE(sock.isOpen());
    EXPECT_EQ(got, sent);
    EXPECT_EQ(sock.unacked(), 0u);
    sock.close(); // idempotent
    sock.drain(); // no-op once closed
    EXPECT_FALSE(sock.isOpen());
    EXPECT_EQ(got, sent);
}

TEST(Socket, DrainThenCloseIsEquivalentToFlush)
{
    Stack stack(scrambled());
    StreamProtocol proto(stack);
    std::size_t delivered = 0;
    StreamSocket sock(proto, 1, 2,
                      [&delivered](const std::vector<Word> &w) {
                          delivered += w.size();
                      });
    sock.write(std::vector<Word>(4 * 9, 7));
    sock.drain();
    EXPECT_TRUE(sock.isOpen()); // drain alone keeps the channel
    EXPECT_EQ(delivered, 4u * 9u);
    EXPECT_EQ(sock.unacked(), 0u);
    sock.close();
    EXPECT_FALSE(sock.isOpen());
}

/**
 * Satellite 4: a scripted fault on exactly the data packet that
 * fills the retransmission ring (the boundary where write() starts
 * blocking on software flow control).  With ringPackets = 4 the
 * writes below inject data packets with injectSeq 0..3 back to back
 * (no acks can interleave until the blocked write first drains), so
 * seq 3 is the ring-filling packet.
 */
void
runRingBoundaryFault(int groupAck, bool duplicate)
{
    Stack stack(StackConfig{});
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    if (duplicate)
        net->faults().scriptDuplicate(3);
    else
        net->faults().scriptDrop(3);

    StreamProtocol proto(stack);
    std::vector<Word> got;
    StreamSocket::Options opts;
    opts.groupAck = groupAck;
    opts.ringPackets = 4;
    StreamSocket sock(proto, 0, 1,
                      [&got](const std::vector<Word> &w) {
                          got.insert(got.end(), w.begin(), w.end());
                      },
                      opts);

    // 8 packets: when the boundary packet (seq 3) is lost, the later
    // arrivals 4..7 buffer out of order — within the receiver's
    // reorder arena (ringPackets + 2 slots), which bounds how far a
    // sender may outrun an unfilled hole.
    std::vector<Word> sent(4 * 8);
    for (std::size_t i = 0; i < sent.size(); ++i)
        sent[i] = static_cast<Word>(0xace0000 + i);
    sock.write(sent);
    sock.close();

    EXPECT_EQ(got, sent);
    EXPECT_EQ(sock.unacked(), 0u);
    const auto t = proto.totals();
    if (duplicate) {
        // The ghost copy must be suppressed by sequence dedup, with
        // no retransmission storm.
        EXPECT_GE(t.duplicatesSuppressed, 1u);
        EXPECT_EQ(net->stats().duplicated, 1u);
    } else {
        // The lost boundary packet must be recovered.
        EXPECT_GE(t.retransmissions, 1u);
        EXPECT_EQ(net->stats().dropped, 1u);
    }
}

TEST(Socket, DropAtRingFullBoundaryPerPacketAcks)
{
    runRingBoundaryFault(/*groupAck=*/1, /*duplicate=*/false);
}

TEST(Socket, DropAtRingFullBoundaryGroupAcks)
{
    runRingBoundaryFault(/*groupAck=*/4, /*duplicate=*/false);
}

TEST(Socket, DuplicateAtRingFullBoundaryPerPacketAcks)
{
    runRingBoundaryFault(/*groupAck=*/1, /*duplicate=*/true);
}

TEST(Socket, DuplicateAtRingFullBoundaryGroupAcks)
{
    runRingBoundaryFault(/*groupAck=*/4, /*duplicate=*/true);
}

TEST(Socket, StreamCountersReachTheMetricsRegistry)
{
    // Satellite 3: the stream layer's recovery counters publish into
    // the PR 1 metrics registry.
    Stack stack(scrambled());
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    net->faults().scriptDrop(5);
    net->faults().scriptDuplicate(9);

    StreamProtocol proto(stack);
    std::size_t delivered = 0;
    StreamSocket sock(proto, 0, 3,
                      [&delivered](const std::vector<Word> &w) {
                          delivered += w.size();
                      });
    sock.write(std::vector<Word>(4 * 16, 3));
    sock.flush();
    EXPECT_EQ(delivered, 4u * 16u);

    MetricsRegistry reg;
    proto.publishMetrics(reg);
    EXPECT_EQ(reg.counter("stream.retransmissions"),
              proto.totals().retransmissions);
    EXPECT_EQ(reg.counter("stream.duplicates_suppressed"),
              proto.totals().duplicatesSuppressed);
    EXPECT_EQ(reg.counter("stream.ooo_buffered"),
              proto.totals().oooBuffered);
    EXPECT_EQ(reg.counter("stream.acks_sent"),
              proto.totals().acksSent);
    EXPECT_GE(reg.counter("stream.retransmissions"), 1u);
    EXPECT_GE(reg.counter("stream.duplicates_suppressed"), 1u);
    EXPECT_GT(reg.counter("stream.ooo_buffered"), 0u);
}

} // namespace
} // namespace msgsim

/**
 * Time-series telemetry (src/tele): sampling engine mechanics, the
 * zero-perturbation contract over the canonical scenarios, bottleneck
 * attribution, heatmap / report / counter-track export, and the
 * histogram-merge machinery the latency percentiles ride on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/trace_session.hh"
#include "tele/heatmap.hh"
#include "tele/probes.hh"
#include "tele/report.hh"
#include "tele/tele_run.hh"
#include "traffic/engine.hh"

namespace msgsim
{
namespace
{

// ------------------------------------------------------------------
// Histogram merging (the satellite machinery).
// ------------------------------------------------------------------

TEST(HistogramMerge, EmptyIsIdentity)
{
    Histogram a(0, 100, 10);
    a.sample(5);
    a.sample(42);
    Histogram empty(0, 100, 10);
    a.merge(empty);
    EXPECT_EQ(a.stat().count(), 2u);
    EXPECT_DOUBLE_EQ(a.stat().min(), 5.0);
    EXPECT_DOUBLE_EQ(a.stat().max(), 42.0);

    Histogram b(0, 100, 10);
    b.merge(a);
    EXPECT_EQ(b.bins(), a.bins());
    EXPECT_EQ(b.stat().count(), a.stat().count());
}

TEST(HistogramMerge, SingleBinCountsAdd)
{
    Histogram a(0, 10, 1);
    Histogram b(0, 10, 1);
    a.sample(1);
    a.sample(2);
    b.sample(9);
    a.merge(b);
    ASSERT_EQ(a.bins().size(), 1u);
    EXPECT_EQ(a.bins()[0], 3u);
    EXPECT_EQ(a.stat().count(), 3u);
    EXPECT_DOUBLE_EQ(a.stat().max(), 9.0);
}

TEST(HistogramMerge, IsAssociative)
{
    auto mk = [](std::initializer_list<double> xs) {
        Histogram h(0, 64, 8);
        for (double x : xs)
            h.sample(x);
        return h;
    };
    const Histogram a = mk({1, 2, 3});
    const Histogram b = mk({10, 20});
    const Histogram c = mk({40, 50, 63, 70});

    Histogram ab = a;
    ab.merge(b);
    Histogram ab_c = ab;
    ab_c.merge(c);

    Histogram bc = b;
    bc.merge(c);
    Histogram a_bc = a;
    a_bc.merge(bc);

    EXPECT_EQ(ab_c.bins(), a_bc.bins());
    EXPECT_EQ(ab_c.stat().count(), a_bc.stat().count());
    EXPECT_DOUBLE_EQ(ab_c.stat().sum(), a_bc.stat().sum());
    EXPECT_DOUBLE_EQ(ab_c.stat().min(), a_bc.stat().min());
    EXPECT_DOUBLE_EQ(ab_c.stat().max(), a_bc.stat().max());
    EXPECT_DOUBLE_EQ(ab_c.percentile(50), a_bc.percentile(50));
}

TEST(WindowedHistogramTest, WindowsAndMergeRange)
{
    WindowedHistogram wh(100, 0, 64, 8);
    wh.sample(10, 1);   // window 0
    wh.sample(150, 2);  // window 1
    wh.sample(199, 3);  // window 1
    wh.sample(420, 60); // window 4
    EXPECT_EQ(wh.windowCount(), 5u);
    EXPECT_EQ(wh.window(0).stat().count(), 1u);
    EXPECT_EQ(wh.window(1).stat().count(), 2u);
    EXPECT_EQ(wh.window(2).stat().count(), 0u);
    EXPECT_EQ(wh.total().stat().count(), 4u);

    const Histogram head = wh.mergeRange(0, 2);
    EXPECT_EQ(head.stat().count(), 3u);
    const Histogram all = wh.mergeRange(0, 99);
    EXPECT_EQ(all.bins(), wh.total().bins());
}

// ------------------------------------------------------------------
// Sampling engine mechanics on a bare simulator.
// ------------------------------------------------------------------

TEST(TeleSession, SamplesAtPeriodBoundariesOnly)
{
    Simulator sim;
    tele::TeleSession s({10, 64});
    double level = 0;
    s.addProbe({"t", "level", invalidNode, tele::ProbeKind::Gauge},
               [&level] { return level; });
    s.bindClock(&sim);
    s.attach();
    // Clock advances 0 -> 7 -> 23 -> 23 (no advance) -> 40.
    sim.scheduleAt(7, [&level] { level = 1; });
    sim.scheduleAt(23, [&level] { level = 2; });
    sim.scheduleAt(23, [&level] { level = 3; });
    sim.scheduleAt(40, [] {});
    sim.run();
    s.detach();

    // Boundaries crossed: 10 (at the 0->7? no — 7 < 10), so the
    // advances 7->23 (boundary 10), 23->40 (boundary 30), plus
    // nothing for the equal-time event.  State sampled is the value
    // *before* the destination event runs.
    const auto samples = s.samples(0);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].tick, 10u);
    EXPECT_DOUBLE_EQ(samples[0].value, 1.0); // after the t=7 event
    EXPECT_EQ(samples[1].tick, 30u);
    EXPECT_DOUBLE_EQ(samples[1].value, 3.0); // after both t=23 events
}

TEST(TeleSession, RingEvictsOldestAndCounts)
{
    Simulator sim;
    tele::TeleSession s({1, 4}); // tiny ring: 4 retained samples
    s.addProbe({"t", "tick", invalidNode, tele::ProbeKind::Counter},
               [&sim] { return double(sim.now()); });
    s.bindClock(&sim);
    s.attach();
    for (Tick t = 1; t <= 10; ++t)
        sim.scheduleAt(t, [] {});
    sim.run();
    s.detach();

    EXPECT_GT(s.samplesDropped(), 0u);
    const auto samples = s.samples(0);
    ASSERT_EQ(samples.size(), 4u);
    // Oldest evicted; retained run is the last four, oldest first.
    EXPECT_EQ(samples.front().tick, 7u);
    EXPECT_EQ(samples.back().tick, 10u);
    EXPECT_EQ(s.tracks()[0].dropped, s.samplesDropped());
}

TEST(TeleSession, RetiredProbesKeepTheirSamples)
{
    Simulator sim;
    tele::TeleSession s({1, 16});
    {
        // Short-lived probed object, destroyed before the session.
        auto counter = std::make_unique<int>(0);
        s.addProbe({"t", "x", invalidNode, tele::ProbeKind::Gauge},
                   [p = counter.get()] { return double(*p); });
        s.bindClock(&sim);
        s.attach();
        sim.scheduleAt(1, [p = counter.get()] { *p = 7; });
        sim.scheduleAt(2, [] {});
        sim.run();
        s.retireProbesFrom(0); // then the object may die
    }
    s.detach();
    ASSERT_EQ(s.tracks().size(), 1u);
    EXPECT_FALSE(s.tracks()[0].read);
    const auto samples = s.samples(0);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_DOUBLE_EQ(samples[1].value, 7.0);
}

// ------------------------------------------------------------------
// The zero-perturbation contract over the canonical scenarios.
// ------------------------------------------------------------------

void
expectUnperturbed(const tele::ScenarioResult &bare,
                  const tele::ScenarioResult &sampled)
{
    EXPECT_EQ(bare.ok, sampled.ok);
    EXPECT_EQ(bare.elapsed, sampled.elapsed);
    EXPECT_EQ(bare.instrTotal, sampled.instrTotal);
    EXPECT_EQ(bare.completions, sampled.completions);
    EXPECT_EQ(bare.backpressure, sampled.backpressure);
    EXPECT_EQ(bare.latencyP50, sampled.latencyP50);
    EXPECT_EQ(bare.latencyP95, sampled.latencyP95);
    EXPECT_EQ(bare.latencyP99, sampled.latencyP99);
}

tele::ScenarioResult
runSampled(tele::ScenarioOptions opt, Tick period = 16)
{
    opt.period = period;
    tele::TeleSession s({period, opt.ringCapacity});
    return tele::runScenario(opt, &s);
}

TEST(TeleScenarios, SamplerCannotPerturbAnySubstrate)
{
    for (const char *scen : {"incast", "wire"})
        for (const Substrate sub :
             {Substrate::Cm5, Substrate::Cr, Substrate::Rdma,
              Substrate::Nicam}) {
            if (std::string(scen) == "wire" && sub == Substrate::Rdma)
                continue; // wire scenario targets classic substrates
            tele::ScenarioOptions opt;
            opt.scenario = scen;
            opt.substrate = sub;
            const tele::ScenarioResult bare =
                tele::runScenario(opt, nullptr);
            EXPECT_TRUE(bare.ok) << scen << "/" << toString(sub);
            const tele::ScenarioResult sampled = runSampled(opt);
            expectUnperturbed(bare, sampled);
        }
}

TEST(TeleScenarios, PeriodCannotPerturbAndDigestIsStable)
{
    tele::ScenarioOptions opt; // incast on cm5
    const tele::ScenarioResult bare = tele::runScenario(opt, nullptr);
    std::string digest16;
    for (const Tick period : {Tick(8), Tick(16), Tick(64)}) {
        const tele::ScenarioResult sampled = runSampled(opt, period);
        expectUnperturbed(bare, sampled);
        if (period == 16)
            digest16 = sampled.digest;
    }
    // Bit-deterministic: the same period reproduces the same bytes.
    const tele::ScenarioResult again = runSampled(opt, 16);
    EXPECT_EQ(again.digest, digest16);
    EXPECT_FALSE(digest16.empty());
}

// ------------------------------------------------------------------
// Bottleneck attribution: the same congestion, two substrates, two
// different named causes.
// ------------------------------------------------------------------

TEST(TeleScenarios, IncastOnCm5NamesTheDestinationRecvRing)
{
    tele::ScenarioOptions opt;
    const tele::ScenarioResult res = runSampled(opt);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.topResource, "ni.recv_ring[0]");
    EXPECT_GT(res.saturatedWindows, 0u);
    EXPECT_GT(res.peakFraction, 0.9);
    EXPECT_GT(res.latencyP50, 0.0);
    EXPECT_GE(res.latencyP99, res.latencyP50);
}

TEST(TeleScenarios, IncastOnRdmaNamesCqBackpressure)
{
    tele::ScenarioOptions opt;
    opt.substrate = Substrate::Rdma;
    const tele::ScenarioResult res = runSampled(opt);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.topResource, "rdma.cq_depth[0]");
    EXPECT_GT(res.saturatedWindows, 0u);
    EXPECT_DOUBLE_EQ(res.peakFraction, 1.0); // pinned at 64/64
    EXPECT_GT(res.backpressure, 0u);         // cqOverflowStalls
}

TEST(TeleScenarios, WireNamesAStreamSendWindow)
{
    tele::ScenarioOptions opt;
    opt.scenario = "wire";
    const tele::ScenarioResult res = runSampled(opt);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.topResource.rfind("wire.window_s", 0), 0u);
    EXPECT_GT(res.backpressure, 0u); // window stalls
}

// ------------------------------------------------------------------
// Report / heatmap / timeline export.
// ------------------------------------------------------------------

TEST(TeleExport, ReportNamesResourceInProse)
{
    tele::ScenarioOptions opt;
    tele::TeleSession s({opt.period, opt.ringCapacity});
    const tele::ScenarioResult res = tele::runScenario(opt, &s);
    ASSERT_TRUE(res.ok);
    const tele::BottleneckReport rep = tele::buildReport(s);
    EXPECT_GT(rep.windows, 0u);
    ASSERT_FALSE(rep.saturated.empty());
    const std::string text = rep.renderText();
    EXPECT_NE(text.find("NI recv ring"), std::string::npos);
    EXPECT_NE(text.find("ni.recv_ring[0]"), std::string::npos);
    const std::string json = rep.toJson().dump(2);
    EXPECT_NE(json.find("\"top_resource\""), std::string::npos);
}

TEST(TeleExport, HeatmapBinsEveryActiveTrack)
{
    tele::ScenarioOptions opt;
    tele::TeleSession s({opt.period, opt.ringCapacity});
    ASSERT_TRUE(tele::runScenario(opt, &s).ok);
    const tele::Heatmap hm = tele::buildHeatmap(s, 32);
    EXPECT_GT(hm.bins, 0u);
    EXPECT_LE(hm.bins, 32u);
    EXPECT_EQ(hm.binTicks % s.config().period, 0u);
    ASSERT_FALSE(hm.rows.empty());
    bool sawRing = false;
    for (const auto &row : hm.rows) {
        EXPECT_EQ(row.values.size(), hm.bins);
        if (row.label == "ni.recv_ring[0]") {
            sawRing = true;
            EXPECT_GT(row.peak, 0.9 * row.capacity);
        }
    }
    EXPECT_TRUE(sawRing);
    EXPECT_FALSE(hm.renderAscii().empty());
}

TEST(TeleExport, CounterTracksMergeOntoATimeline)
{
    tele::ScenarioOptions opt;
    tele::TeleSession s({opt.period, opt.ringCapacity});
    ASSERT_TRUE(tele::runScenario(opt, &s).ok);
    TraceSession ts;
    s.exportCounters(ts);
    const std::string json = ts.chromeTraceJson();
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("ni.recv_ring"), std::string::npos);
}

// ------------------------------------------------------------------
// Closed-loop latency percentiles (the traffic satellite).
// ------------------------------------------------------------------

TEST(TrafficLatency, EveryMessageGetsOneTiming)
{
    TrafficSpec spec;
    spec.pattern = TrafficPattern::UniformRandom;
    spec.nodes = 8;
    spec.messagesPerNode = 4;
    spec.sizeWords = 4;
    spec.seed = 3;
    for (const TrafficProto proto :
         {TrafficProto::Am, TrafficProto::Seq, TrafficProto::Acked}) {
        spec.proto = proto;
        Stack stack(trafficStackConfig(spec, Substrate::Cm5));
        TrafficEngine eng(stack);
        const TrafficResult res = eng.run(spec);
        ASSERT_TRUE(res.ok);
        EXPECT_EQ(res.timings.size(),
                  std::size_t(spec.nodes) * spec.messagesPerNode);
        for (const MsgTiming &t : res.timings)
            EXPECT_GT(t.done, t.birth);
    }
}

TEST(TrafficLatency, PercentilesAreDeterministic)
{
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Incast;
    spec.nodes = 8;
    spec.messagesPerNode = 4;
    spec.sizeWords = 6;
    spec.seed = 11;
    spec.deliverGap = 2;
    auto once = [&] {
        Stack stack(trafficStackConfig(spec, Substrate::Cm5));
        TrafficEngine eng(stack);
        return eng.run(spec);
    };
    const TrafficResult a = once();
    const TrafficResult b = once();
    ASSERT_TRUE(a.ok);
    const WindowedHistogram ha = a.latencyHistogram(64);
    const WindowedHistogram hb = b.latencyHistogram(64);
    EXPECT_EQ(ha.total().bins(), hb.total().bins());
    EXPECT_DOUBLE_EQ(ha.total().percentile(50),
                     hb.total().percentile(50));
    EXPECT_DOUBLE_EQ(ha.total().percentile(99),
                     hb.total().percentile(99));
    EXPECT_GT(ha.total().percentile(50), 0.0);
    EXPECT_GT(ha.windowCount(), 1u); // spread over simulated time
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the traffic generators, the machine-wide traffic runner,
 * and the RPC engine.
 */

#include <gtest/gtest.h>

#include <set>

#include "protocols/rpc.hh"
#include "traffic/traffic.hh"

namespace msgsim
{
namespace
{

TEST(TrafficGen, PermutationIsASelfFreeBijection)
{
    for (std::uint32_t n : {2u, 5u, 16u, 33u}) {
        TrafficGen gen(n, TrafficPattern::Permutation, 9);
        std::set<NodeId> seen;
        for (NodeId i = 0; i < n; ++i) {
            const NodeId d = gen.destFor(i);
            EXPECT_NE(d, i) << n;
            seen.insert(d);
        }
        EXPECT_EQ(seen.size(), n) << n; // bijective
    }
}

TEST(TrafficGen, RingAndTransposeShapes)
{
    TrafficGen ring(8, TrafficPattern::Ring);
    for (NodeId i = 0; i < 8; ++i)
        EXPECT_EQ(ring.destFor(i), (i + 1) % 8);
    TrafficGen tr(8, TrafficPattern::Transpose);
    for (NodeId i = 0; i < 8; ++i)
        EXPECT_EQ(tr.destFor(i), (i + 4) % 8);
}

TEST(TrafficGen, UniformNeverSelfTargets)
{
    TrafficGen gen(4, TrafficPattern::UniformRandom, 3);
    for (int k = 0; k < 1000; ++k)
        for (NodeId i = 0; i < 4; ++i)
            EXPECT_NE(gen.destFor(i), i);
}

TEST(TrafficGen, HotspotConcentrates)
{
    TrafficGen gen(16, TrafficPattern::Hotspot, 5, 0.6);
    int to0 = 0;
    const int trials = 5000;
    for (int k = 0; k < trials; ++k)
        to0 += gen.destFor(7) == 0;
    // 60% directed + ~1/16 of the uniform remainder.
    EXPECT_NEAR(static_cast<double>(to0) / trials, 0.625, 0.04);
}

TEST(TrafficRunner, DeliversEverythingIntact)
{
    StackConfig cfg;
    cfg.nodes = 8;
    Stack stack(cfg);
    TrafficRunner runner(stack);
    TrafficGen gen(8, TrafficPattern::UniformRandom, 11);
    const auto res = runner.run(gen, 16);
    EXPECT_TRUE(res.ok);
    EXPECT_EQ(res.messages, 8u * 16u);
    EXPECT_EQ(res.delivered, res.messages);
    EXPECT_EQ(res.perNodeInstr.count(), 8u);
}

TEST(TrafficRunner, HotspotShowsImbalance)
{
    StackConfig cfg;
    cfg.nodes = 16;
    Stack stack(cfg);
    TrafficRunner hot_runner(stack);
    TrafficGen hot(16, TrafficPattern::Hotspot, 13, 0.8);
    const auto hot_res = hot_runner.run(hot, 32);
    ASSERT_TRUE(hot_res.ok);

    StackConfig cfg2;
    cfg2.nodes = 16;
    Stack stack2(cfg2);
    TrafficRunner perm_runner(stack2);
    TrafficGen perm(16, TrafficPattern::Permutation, 13);
    const auto perm_res = perm_runner.run(perm, 32);
    ASSERT_TRUE(perm_res.ok);

    EXPECT_GT(hot_res.maxOverMean, perm_res.maxOverMean + 0.5);
    // Permutation traffic is perfectly balanced by construction.
    EXPECT_LT(perm_res.maxOverMean, 1.1);
}

// --- RPC ------------------------------------------------------------

TEST(Rpc, SynchronousCallRoundTrips)
{
    Stack stack(StackConfig{});
    RpcEngine rpc(stack);
    rpc.registerProcedure(1, 7,
                          [](NodeId, const std::vector<Word> &req) {
                              return std::vector<Word>{req.at(0) +
                                                       req.at(1)};
                          });
    const auto reply = rpc.callSync(0, 1, 7, {40, 2});
    ASSERT_EQ(reply.size(), 3u); // padded to the packet
    EXPECT_EQ(reply[0], 42u);
}

TEST(Rpc, ManyOutstandingCalls)
{
    StackConfig cfg;
    cfg.nodes = 4;
    Stack stack(cfg);
    RpcEngine rpc(stack);
    for (NodeId s = 0; s < 4; ++s)
        rpc.registerProcedure(s, 1,
                              [s](NodeId caller,
                                  const std::vector<Word> &) {
                                  return std::vector<Word>{
                                      s * 100 + caller};
                              });
    std::vector<RpcEngine::CallHandle> calls;
    for (NodeId c = 0; c < 4; ++c)
        for (NodeId s = 0; s < 4; ++s) {
            if (c == s)
                continue;
            calls.push_back(rpc.call(c, s, 1, {}));
        }
    for (auto h : calls)
        ASSERT_TRUE(rpc.wait(h));
    // Spot-check one: caller 2 -> server 3.
    // (calls are issued in (c,s) order; find it)
    std::size_t idx = 0;
    for (NodeId c = 0; c < 4; ++c)
        for (NodeId s = 0; s < 4; ++s) {
            if (c == s)
                continue;
            if (c == 2 && s == 3) {
                EXPECT_EQ(rpc.reply(calls[idx])[0], 302u);
            }
            ++idx;
        }
}

TEST(Rpc, CostIsTwoSinglePacketExchanges)
{
    Stack stack(StackConfig{});
    RpcEngine rpc(stack);
    rpc.registerProcedure(1, 1,
                          [](NodeId, const std::vector<Word> &) {
                              return std::vector<Word>{};
                          });
    const std::uint64_t before =
        stack.node(0).acct().counter().paperTotal() +
        stack.node(1).acct().counter().paperTotal();
    (void)rpc.callSync(0, 1, 1, {});
    const std::uint64_t cost =
        stack.node(0).acct().counter().paperTotal() +
        stack.node(1).acct().counter().paperTotal() - before;
    // 2 x (send 20 + recv 27) + the engine's small demux charges.
    EXPECT_GE(cost, 94u);
    EXPECT_LE(cost, 94u + 16u);
}

TEST(Rpc, WorksAcrossJitteryNetwork)
{
    StackConfig cfg;
    cfg.nodes = 4;
    cfg.maxJitter = 30;
    Stack stack(cfg);
    RpcEngine rpc(stack);
    rpc.registerProcedure(3, 9,
                          [](NodeId, const std::vector<Word> &req) {
                              return std::vector<Word>{req.at(0) * 2};
                          });
    for (Word v = 0; v < 20; ++v) {
        const auto reply = rpc.callSync(1, 3, 9, {v});
        EXPECT_EQ(reply[0], v * 2);
    }
}

} // namespace
} // namespace msgsim

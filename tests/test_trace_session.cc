/**
 * @file
 * Tests of the observability layer: TraceSession span recording and
 * Chrome-trace export, the MetricsRegistry, histogram percentiles,
 * and — critically — that tracing is a pure observer that never
 * perturbs an instruction count.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>

#include "net/tracer.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"
#include "sim/log.hh"
#include "sim/metrics.hh"
#include "sim/trace_session.hh"

namespace msgsim
{
namespace
{

// ----------------------------------------------------------------
// A minimal recursive-descent JSON well-formedness checker (values
// are validated but not materialized) — enough to prove the exported
// trace parses without an external JSON library.
// ----------------------------------------------------------------

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ----------------------------------------------------------------
// TraceSession core behavior.
// ----------------------------------------------------------------

TEST(TraceSession, SpansNestPerNodeAndRecordAtEnd)
{
    TraceSession ts;
    ts.beginSpan(0, "outer", "a");
    ts.beginSpan(0, "inner", "b");
    EXPECT_EQ(ts.openSpans(), 2u);
    EXPECT_EQ(ts.snapshot().size(), 0u); // complete-at-end
    ts.endSpan(0);
    ts.endSpan(0);
    EXPECT_EQ(ts.openSpans(), 0u);

    const auto recs = ts.snapshot();
    ASSERT_EQ(recs.size(), 2u);
    // LIFO: the inner span completes (and is recorded) first.
    EXPECT_STREQ(recs[0].cat, "inner");
    EXPECT_STREQ(recs[1].cat, "outer");
    EXPECT_EQ(recs[0].kind, TraceSession::Kind::Span);
}

TEST(TraceSession, SpansOnDifferentNodesAreIndependent)
{
    TraceSession ts;
    ts.beginSpan(0, "c", "n0");
    ts.beginSpan(1, "c", "n1");
    ts.endSpan(0);
    const auto recs = ts.snapshot();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].node, 0u);
    EXPECT_EQ(ts.openSpans(), 1u);
}

TEST(TraceSession, RingEvictsOldestButKeepsCounting)
{
    TraceSession::Config cfg;
    cfg.capacity = 4;
    TraceSession ts(cfg);
    for (int i = 0; i < 10; ++i)
        ts.instant(0, "t", "e", i);
    EXPECT_EQ(ts.observed(), 10u);
    EXPECT_EQ(ts.dropped(), 6u);
    const auto recs = ts.snapshot();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs.front().value, 6.0); // oldest retained
    EXPECT_EQ(recs.back().value, 9.0);
}

TEST(TraceSession, CapacityZeroClampsToOne)
{
    TraceSession::Config cfg;
    cfg.capacity = 0;
    TraceSession ts(cfg);
    ts.instant(0, "t", "a");
    ts.instant(0, "t", "b");
    EXPECT_EQ(ts.snapshot().size(), 1u);
    EXPECT_EQ(ts.observed(), 2u);
}

TEST(TraceSession, UnmatchedEndIsCountedNotRecorded)
{
    TraceSession ts;
    ts.endSpan(3);
    EXPECT_EQ(ts.unmatchedEnds(), 1u);
    EXPECT_EQ(ts.snapshot().size(), 0u);
}

TEST(TraceSession, SpanCountsSurviveClear)
{
    TraceSession ts;
    ts.beginSpan(0, "p", "x");
    ts.endSpan(0);
    ts.beginSpan(0, "p", "x");
    ts.endSpan(0);
    ts.beginSpan(1, "p", "y");
    ts.endSpan(1);
    ts.clear();
    EXPECT_EQ(ts.snapshot().size(), 0u);
    const auto &counts = ts.spanCounts();
    EXPECT_EQ(counts.at("p/x"), 2u);
    EXPECT_EQ(counts.at("p/y"), 1u);
}

TEST(TraceSession, AttachDetachControlsCurrent)
{
    EXPECT_EQ(TraceSession::current(), nullptr);
    {
        TraceSession ts;
        ts.attach();
        EXPECT_EQ(TraceSession::current(), &ts);
        // ScopedSpan goes through the attached session.
        { ScopedSpan span(0, "s", "scoped"); }
        EXPECT_EQ(ts.snapshot().size(), 1u);
    } // destructor detaches
    EXPECT_EQ(TraceSession::current(), nullptr);
    // With no session attached the RAII hook is a no-op.
    { ScopedSpan span(0, "s", "ignored"); }
}

TEST(TraceSession, ClockBindingTimestampsSpans)
{
    Simulator sim;
    TraceSession ts;
    ts.bindClock(&sim);
    EXPECT_TRUE(ts.clockIs(&sim));

    sim.schedule(5, [&] { ts.beginSpan(0, "c", "work"); });
    sim.schedule(12, [&] { ts.endSpan(0); });
    sim.run();

    const auto recs = ts.snapshot();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].start, 5u);
    EXPECT_EQ(recs[0].end, 12u);
}

// ----------------------------------------------------------------
// Chrome-trace export.
// ----------------------------------------------------------------

TEST(TraceExport, JsonIsWellFormedAndCarriesEveryRecordKind)
{
    Simulator sim;
    TraceSession ts;
    ts.bindClock(&sim);
    ts.beginSpan(0, "proto", "phase \"one\""); // exercises escaping
    ts.endSpan(0);
    ts.instant(1, "hw", "deliver", 7);
    ts.counterSample(0, "depth", 3);
    ts.counterSample("global", 1);

    const std::string json = ts.chromeTraceJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("phase \\\"one\\\""), std::string::npos);
    EXPECT_NE(json.find("node0/depth"), std::string::npos);
}

TEST(TraceExport, OpenSpansAreFlushedAtExport)
{
    TraceSession ts;
    ts.beginSpan(0, "c", "unclosed");
    const std::string json = ts.chromeTraceJson();
    EXPECT_EQ(ts.openSpans(), 0u);
    EXPECT_NE(json.find("unclosed"), std::string::npos);
}

TEST(TraceExport, TracedProtocolRunContainsAllSixStepsAndHwEvents)
{
    TraceSession ts;
    ts.attach();

    StackConfig cfg;
    cfg.nodes = 2;
    Stack stack(cfg);
    ts.bindClock(&stack.sim());
    PacketTracer tracer;
    stack.network().setTracer(&tracer);
    attachTraceBridge(tracer, ts);

    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 16;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    ts.detach();

    // The six finite-sequence protocol steps all opened spans...
    const auto &counts = ts.spanCounts();
    for (const char *step : {"alloc_req", "seg_alloc", "alloc_reply",
                             "data", "seg_free", "ack"}) {
        const std::string key = std::string("finite_xfer/") + step;
        ASSERT_TRUE(counts.count(key)) << key;
        EXPECT_GE(counts.at(key), 1u) << key;
    }

    // ... and the JSON timeline carries them plus the bridged
    // hardware instants, all parseable.
    const std::string json = ts.chromeTraceJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    for (const char *name : {"alloc_req", "seg_alloc", "alloc_reply",
                             "seg_free", "ack", "inject", "deliver"})
        EXPECT_NE(json.find(name), std::string::npos) << name;

    // Bridged hardware events share the protocol spans' clock: every
    // timestamp lies within the simulated run.
    const Tick end = stack.sim().now();
    for (const auto &rec : ts.snapshot()) {
        EXPECT_LE(rec.start, end);
        EXPECT_LE(rec.end, end);
    }
}

TEST(TraceExport, WriteChromeTraceRoundTripsThroughAFile)
{
    TraceSession ts;
    ts.instant(0, "t", "marker", 42);
    const std::string path = ::testing::TempDir() + "trace_rt.json";
    ASSERT_TRUE(ts.writeChromeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    JsonChecker checker(text);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(text.find("marker"), std::string::npos);
    std::remove(path.c_str());
}

// ----------------------------------------------------------------
// Tracing must never perturb the paper's instruction counts.
// ----------------------------------------------------------------

struct CountPair
{
    InstrCounter src;
    InstrCounter dst;
};

CountPair
runInstrumented(bool traced)
{
    TraceSession ts;
    if (traced)
        ts.attach();

    StackConfig cfg;
    cfg.nodes = 2;
    CountPair out;
    {
        // Finite-sequence protocol, calibration then event mode.
        Stack stack(cfg);
        PacketTracer tracer;
        if (traced) {
            ts.bindClock(&stack.sim());
            stack.network().setTracer(&tracer);
            attachTraceBridge(tracer, ts);
        }
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = 64;
        const auto r1 = proto.run(p);
        EXPECT_TRUE(r1.dataOk);
        p.eventMode = true;
        const auto r2 = proto.run(p);
        EXPECT_TRUE(r2.dataOk);
        out.src += stack.node(0).acct().counter();
        out.dst += stack.node(1).acct().counter();
    }
    {
        // Indefinite-sequence protocol, event mode.
        Stack stack(cfg);
        PacketTracer tracer;
        if (traced) {
            ts.bindClock(&stack.sim());
            stack.network().setTracer(&tracer);
            attachTraceBridge(tracer, ts);
        }
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 64;
        p.eventMode = true;
        const auto r = proto.run(p);
        EXPECT_TRUE(r.dataOk);
        out.src += stack.node(0).acct().counter();
        out.dst += stack.node(1).acct().counter();
    }
    if (traced) {
        EXPECT_GT(ts.observed(), 0u);
        ts.detach();
    }
    return out;
}

TEST(TraceOverhead, InstructionCountsAreBitIdenticalWithTracingOn)
{
    const CountPair off = runInstrumented(false);
    const CountPair on = runInstrumented(true);
    // Full-structure equality: every per-(feature, row, opclass)
    // bucket of the Table 2/3 accounting must match bit for bit.
    EXPECT_TRUE(off.src == on.src);
    EXPECT_TRUE(off.dst == on.dst);
}

// ----------------------------------------------------------------
// MetricsRegistry.
// ----------------------------------------------------------------

TEST(Metrics, CounterGaugeStatHistogramRoundTrip)
{
    MetricsRegistry reg;
    reg.counter("a.count") += 3;
    reg.counter("a.count") += 2;
    reg.gauge("a.level") = 7.5;
    reg.stat("a.stat").sample(1);
    reg.stat("a.stat").sample(3);
    reg.histogram("a.hist", 0, 10, 10).sample(4.2);

    EXPECT_EQ(reg.size(), 4u);
    EXPECT_EQ(reg.counter("a.count"), 5u);
    EXPECT_EQ(reg.gauge("a.level"), 7.5);
    EXPECT_EQ(reg.stat("a.stat").count(), 2u);
    EXPECT_EQ(reg.stat("a.stat").mean(), 2.0);
    EXPECT_EQ(reg.histogram("a.hist", 0, 10, 10).stat().count(), 1u);
}

TEST(Metrics, LabelsDistinguishSeriesAndFlattenCanonically)
{
    MetricsRegistry reg;
    reg.counter("ni.drops", {{"node", "0"}}) = 1;
    reg.counter("ni.drops", {{"node", "1"}}) = 2;
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.has("ni.drops", {{"node", "0"}}));
    EXPECT_FALSE(reg.has("ni.drops", {{"node", "2"}}));
    EXPECT_FALSE(reg.has("ni.drops"));
    EXPECT_EQ(MetricsRegistry::flatKey(
                  "m", {{"a", "1"}, {"b", "2"}}),
              "m{a=1,b=2}");
    EXPECT_EQ(MetricsRegistry::flatKey("m", {}), "m");
}

TEST(Metrics, KindMismatchIsFatal)
{
    log_detail::throwOnError = true;
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), log_detail::SimError);
    log_detail::throwOnError = false;
}

TEST(Metrics, DumpsAreWellFormed)
{
    MetricsRegistry reg;
    reg.counter("c", {{"node", "3"}}) = 9;
    reg.gauge("g") = 1.25;
    auto &h = reg.histogram("h", 0, 100, 4);
    for (int i = 0; i < 100; ++i)
        h.sample(i);

    const std::string text = reg.dumpText();
    EXPECT_NE(text.find("c{node=3}"), std::string::npos);
    EXPECT_NE(text.find("9"), std::string::npos);

    const std::string json = reg.dumpJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid()) << json;
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, GlobalRegistryIsAStableSingleton)
{
    MetricsRegistry &a = MetricsRegistry::global();
    MetricsRegistry &b = MetricsRegistry::global();
    EXPECT_EQ(&a, &b);
    a.counter("test.global.probe") = 1;
    EXPECT_TRUE(b.has("test.global.probe"));
    a.clear();
}

// ----------------------------------------------------------------
// Histogram extensions (percentile + ASCII rendering).
// ----------------------------------------------------------------

TEST(HistogramExt, PercentileInterpolatesAndClamps)
{
    Histogram h(0, 100, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(99), 99.0, 1.5);
    EXPECT_GE(h.percentile(0), h.stat().min());
    EXPECT_LE(h.percentile(100), h.stat().max());
    EXPECT_EQ(Histogram(0, 1, 4).percentile(50), 0.0); // empty
}

TEST(HistogramExt, ZeroBinConstructionIsSafe)
{
    Histogram h(0, 10, 0); // clamps to one bin instead of crashing
    h.sample(5);
    h.sample(50); // above range: saturates into the last bin
    EXPECT_EQ(h.bins().size(), 1u);
    EXPECT_EQ(h.bins()[0], 2u);
}

TEST(HistogramExt, RenderAsciiScalesToPeak)
{
    Histogram h(0, 4, 4);
    for (int i = 0; i < 9; ++i)
        h.sample(0.5); // bin 0 is the peak
    h.sample(2.5);     // bin 2 lightly filled
    const std::string art = h.renderAscii();
    ASSERT_EQ(art.size(), 6u); // "[....]"
    EXPECT_EQ(art.front(), '[');
    EXPECT_EQ(art.back(), ']');
    EXPECT_EQ(art[1], '@');  // peak bin renders at max level
    EXPECT_EQ(art[2], ' ');  // empty bin renders blank
    EXPECT_NE(art[3], ' ');  // non-empty bin renders something
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the report renderers: paper-shaped tables, CSV output,
 * and formatting conventions (zero rendered as "-").
 */

#include <gtest/gtest.h>

#include "core/report.hh"

namespace msgsim
{
namespace
{

BreakdownCounter
sampleBreakdown()
{
    BreakdownCounter bd;
    bd.src.add(Feature::BaseCost, OpClass::Reg, 14);
    bd.src.add(Feature::BaseCost, OpClass::MemLoad, 1);
    bd.src.add(Feature::BaseCost, OpClass::DevStore, 5);
    bd.dst.add(Feature::BaseCost, OpClass::Reg, 22);
    bd.dst.add(Feature::BaseCost, OpClass::DevLoad, 5);
    bd.src.add(Feature::FaultTolerance, OpClass::Reg, 3);
    return bd;
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"Name", "A", "B"});
    t.addRow({"row-one", "1", "22"});
    t.addRow({"r2", "333", "4"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| Name    |"), std::string::npos);
    EXPECT_NE(out.find("| row-one |   1 | 22 |"), std::string::npos);
    EXPECT_NE(out.find("| r2      | 333 |  4 |"), std::string::npos);
}

TEST(TextTable, SeparatorRendersRule)
{
    TextTable t({"X"});
    t.addRow({"a"});
    t.addSeparator();
    t.addRow({"b"});
    const std::string out = t.render();
    // Expect at least 4 rules: top, under header, mid, bottom.
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    EXPECT_GE(rules, 4u);
}

TEST(TextTable, CsvSkipsSeparators)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    t.addSeparator();
    t.addRow({"3", "4"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n3,4\n");
}

TEST(Report, FmtCountDashForZero)
{
    EXPECT_EQ(fmtCount(0), "-");
    EXPECT_EQ(fmtCount(42), "42");
}

TEST(Report, FeatureTableHasTotalsAndDashes)
{
    const std::string out =
        featureTable("Demo", sampleBreakdown());
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("Base Cost"), std::string::npos);
    EXPECT_NE(out.find("Buffer Mgmt."), std::string::npos);
    // Buffer management is zero: rendered as dashes.
    EXPECT_NE(out.find("-"), std::string::npos);
    // Totals: src 23, dst 27, total 50.
    EXPECT_NE(out.find("23"), std::string::npos);
    EXPECT_NE(out.find("27"), std::string::npos);
    EXPECT_NE(out.find("50"), std::string::npos);
}

TEST(Report, CategoryTableSplitsRegMemDev)
{
    const std::string out =
        categoryTable("Demo3", sampleBreakdown());
    EXPECT_NE(out.find("src reg"), std::string::npos);
    EXPECT_NE(out.find("dst dev"), std::string::npos);
    EXPECT_NE(out.find("14"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Report, RowTableFromAccounting)
{
    Accounting src, dst;
    {
        RowScope r(src, CostRow::NiSetup);
        src.charge(OpClass::Reg, 5);
    }
    {
        RowScope r(dst, CostRow::ReadNi);
        dst.charge(OpClass::DevLoad, 3);
    }
    const std::string out = rowTable("T1", src, dst);
    EXPECT_NE(out.find("NI setup"), std::string::npos);
    EXPECT_NE(out.find("Read from NI"), std::string::npos);
    EXPECT_NE(out.find("Total"), std::string::npos);
}

TEST(Report, CycleTableUsesWeights)
{
    const auto bd = sampleBreakdown();
    const std::string unit =
        cycleTable("W", bd, CostModel::unit());
    const std::string cm5 = cycleTable("W", bd, CostModel::cm5());
    // dev ops get 5x weight under cm5: totals differ.
    EXPECT_NE(unit, cm5);
    EXPECT_NE(cm5.find("cm5"), std::string::npos);
}

} // namespace
} // namespace msgsim

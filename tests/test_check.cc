/**
 * @file
 * Tests of the schedule-space model checker (PR 4): controller
 * eligibility under both substrates, bounded-exhaustive exploration
 * with invariants holding, determinism of reports, the seeded
 * ack-before-insert stream bug being caught / shrunk / replayed
 * through its JSON counterexample end to end, and tolerant replay of
 * stale schedules.
 */

#include <gtest/gtest.h>

#include "check/explorer.hh"
#include "check/harness.hh"
#include "check/replay.hh"
#include "check/shrink.hh"

namespace msgsim::check
{
namespace
{

ScenarioConfig
streamScenario(std::uint32_t packets = 3, int faults = 1)
{
    ScenarioConfig sc;
    sc.protocol = "stream";
    sc.packets = packets;
    sc.faults = faults;
    return sc;
}

// --- Controller eligibility ---------------------------------------

TEST(Controller, Cm5ExposesEveryPacketAndAllFaultKinds)
{
    ScenarioConfig sc = streamScenario();
    auto h = ScenarioHarness::make(sc);
    h->start();
    h->progress();
    // All three data packets are in flight and schedulable.
    ASSERT_EQ(h->controller().inFlight(), 3u);
    const auto en = h->controller().enabled(
        /*faultsLeft=*/1,
        kFaultDrop | kFaultCorrupt | kFaultDuplicate);
    // 3 packets x (deliver, drop, corrupt, duplicate).
    EXPECT_EQ(en.size(), 12u);
    // Canonical order: packet 0's choices first, Deliver leading.
    EXPECT_EQ(en[0].kind, ChoiceKind::Deliver);
    EXPECT_EQ(en[0].packetId, 0u);
    EXPECT_EQ(en[1].kind, ChoiceKind::Drop);

    // With the fault budget spent, only deliveries remain.
    const auto delivers = h->controller().enabled(0, 0xff);
    EXPECT_EQ(delivers.size(), 3u);
    for (const auto &c : delivers)
        EXPECT_EQ(c.kind, ChoiceKind::Deliver);
}

TEST(Controller, CrExposesOnlyFlowHeadsAndNoFaults)
{
    ScenarioConfig sc = streamScenario();
    sc.substrate = Substrate::Cr;
    auto h = ScenarioHarness::make(sc);
    h->start();
    h->progress();
    ASSERT_EQ(h->controller().inFlight(), 3u);
    // Reliable in-order substrate: the single 0->1 flow exposes only
    // its oldest packet, and no fault choices at all.
    const auto en = h->controller().enabled(
        /*faultsLeft=*/2,
        kFaultDrop | kFaultCorrupt | kFaultDuplicate);
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, ChoiceKind::Deliver);
    EXPECT_EQ(en[0].packetId, 0u);
}

TEST(Controller, DuplicateClonesWithFreshId)
{
    ScenarioConfig sc = streamScenario();
    auto h = ScenarioHarness::make(sc);
    h->start();
    h->progress();
    const auto before = h->controller().inFlight();
    ASSERT_TRUE(h->controller().apply(
        {ChoiceKind::Duplicate, 1}));
    EXPECT_EQ(h->controller().inFlight(), before + 1);
    // The clone got the next fresh id; the original is untouched.
    const auto &pkts = h->controller().packets();
    EXPECT_EQ(pkts.back().id, 3u);
    EXPECT_EQ(pkts.back().pkt.flowIndex, pkts[1].pkt.flowIndex);
    EXPECT_EQ(h->controller().network().stats().duplicated, 1u);

    // A stale choice (unknown id) is refused, not fatal.
    EXPECT_FALSE(h->controller().apply({ChoiceKind::Deliver, 99}));
}

// --- Exploration ---------------------------------------------------

TEST(Explorer, SinglePacketExhaustiveAndClean)
{
    ScenarioConfig sc;
    sc.protocol = "single_packet";
    sc.packets = 3;
    ExploreLimits lim;
    lim.depth = 12;
    CheckReport rep = Explorer(sc, lim).run();
    EXPECT_TRUE(rep.exhausted);
    EXPECT_EQ(rep.violations, 0u);
    // 3! fault-free orderings + 36 single-fault schedules.
    EXPECT_EQ(rep.schedulesRun, 42u);
}

TEST(Explorer, StreamExhaustiveAndClean)
{
    ExploreLimits lim;
    lim.depth = 8;
    lim.budget = 100000;
    CheckReport rep = Explorer(streamScenario(), lim).run();
    EXPECT_TRUE(rep.exhausted);
    EXPECT_EQ(rep.violations, 0u);
    EXPECT_GT(rep.schedulesRun, 1000u);
}

TEST(Explorer, StreamTwoFaultsExhaustiveAndClean)
{
    ExploreLimits lim;
    lim.depth = 5;
    lim.budget = 100000;
    CheckReport rep =
        Explorer(streamScenario(3, /*faults=*/2), lim).run();
    EXPECT_TRUE(rep.exhausted);
    EXPECT_EQ(rep.violations, 0u);
}

TEST(Explorer, SocketExhaustiveIncludingVerifiedTeardown)
{
    ScenarioConfig sc = streamScenario();
    sc.protocol = "socket";
    ExploreLimits lim;
    lim.depth = 6;
    lim.budget = 100000;
    CheckReport rep = Explorer(sc, lim).run();
    EXPECT_TRUE(rep.exhausted);
    EXPECT_EQ(rep.violations, 0u);
}

TEST(Explorer, RandomWalksStayClean)
{
    ExploreLimits lim;
    lim.depth = 0; // no DFS: walks only
    lim.walks = 200;
    lim.seed = 42;
    CheckReport rep = Explorer(streamScenario(), lim).run();
    EXPECT_EQ(rep.violations, 0u);
    EXPECT_EQ(rep.walkSchedules, 200u);
}

TEST(Explorer, ReportIsDeterministic)
{
    ExploreLimits lim;
    lim.depth = 6;
    lim.walks = 50;
    lim.seed = 7;
    const ScenarioConfig sc = streamScenario(3, 2);
    const std::string a = reportToJson(Explorer(sc, lim).run());
    const std::string b = reportToJson(Explorer(sc, lim).run());
    EXPECT_EQ(a, b); // byte-identical, the golden gate's contract
}

// --- The seeded bug: catch, shrink, serialize, replay --------------

TEST(Explorer, CatchesAckBeforeInsertBugEndToEnd)
{
    ScenarioConfig sc = streamScenario();
    sc.bugAckBeforeInsert = true;
    ExploreLimits lim;
    lim.depth = 8;
    Explorer explorer(sc, lim);

    CheckReport rep = explorer.run();
    ASSERT_EQ(rep.violations, 1u);
    EXPECT_EQ(rep.counterexample.invariant, "stalled");

    // Shrink: the minimal trigger is a single out-of-order delivery.
    Shrinker shrinker(explorer);
    const ShrinkResult shrunk = shrinker.shrink(rep.counterexample);
    ASSERT_EQ(shrunk.schedule.size(), 1u);
    EXPECT_EQ(shrunk.schedule[0].kind, ChoiceKind::Deliver);
    EXPECT_EQ(shrunk.schedule[0].packetId, 2u);
    EXPECT_TRUE(shrunk.result.violated);
    EXPECT_EQ(shrunk.result.invariant, "stalled");

    // Serialize the counterexample and round-trip it through JSON.
    Counterexample ce;
    ce.scenario = sc;
    ce.invariant = shrunk.result.invariant;
    ce.detail = shrunk.result.detail;
    ce.schedule = shrunk.schedule;
    const std::string text = counterexampleToJson(ce);

    Counterexample parsed;
    std::string error;
    ASSERT_TRUE(counterexampleFromJson(text, parsed, error)) << error;
    EXPECT_EQ(parsed.scenario.protocol, "stream");
    EXPECT_TRUE(parsed.scenario.bugAckBeforeInsert);
    EXPECT_EQ(parsed.invariant, "stalled");
    ASSERT_EQ(parsed.schedule.size(), 1u);
    EXPECT_EQ(parsed.schedule[0], ce.schedule[0]);

    // Replay the parsed counterexample: the violation reproduces.
    Explorer replayer(parsed.scenario, lim);
    const ScheduleResult res = replayer.replay(parsed.schedule);
    EXPECT_TRUE(res.violated);
    EXPECT_EQ(res.invariant, parsed.invariant);

    // And with the bug knob off, the same schedule passes.
    ScenarioConfig fixed = parsed.scenario;
    fixed.bugAckBeforeInsert = false;
    const ScheduleResult ok =
        Explorer(fixed, lim).replay(parsed.schedule);
    EXPECT_FALSE(ok.violated);
}

TEST(Explorer, ReplayToleratesStaleChoices)
{
    // A schedule full of junk ids: tolerant replay skips them and
    // the default policy completes the run cleanly.
    ExploreLimits lim;
    std::vector<Choice> junk = {{ChoiceKind::Deliver, 77},
                                {ChoiceKind::Drop, 88},
                                {ChoiceKind::Deliver, 1}};
    const ScheduleResult res =
        Explorer(streamScenario(), lim).replay(junk);
    EXPECT_FALSE(res.violated);
    // Only the one real choice (and defaults) actually executed —
    // and no fault fired, so every taken choice is a delivery.
    for (const Choice &c : res.schedule)
        EXPECT_EQ(c.kind, ChoiceKind::Deliver);
}

TEST(Explorer, FaultSchedulesExerciseRecovery)
{
    // Force a drop of the first data packet, then let the default
    // policy run: the kick-based retransmission must recover it.
    ExploreLimits lim;
    const ScheduleResult res = Explorer(streamScenario(), lim)
                                   .replay({{ChoiceKind::Drop, 0}});
    EXPECT_FALSE(res.violated) << res.invariant << ": " << res.detail;
}

} // namespace
} // namespace msgsim::check

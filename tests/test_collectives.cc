/**
 * @file
 * Tests of the collective operations: correctness of barrier,
 * broadcast, reduce, and allreduce across node counts (including
 * non-powers of two), roots, operators, and hostile networks, plus
 * logarithmic cost scaling.
 */

#include <gtest/gtest.h>

#include "coll/collectives.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

StackConfig
config(std::uint32_t nodes)
{
    StackConfig cfg;
    cfg.nodes = nodes;
    return cfg;
}

class CollNodeSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CollNodeSweep, BarrierCompletes)
{
    Stack stack(config(GetParam()));
    Collectives coll(stack);
    const auto res = coll.barrier();
    EXPECT_TRUE(res.ok);
    // Dissemination: N messages per round.
    std::uint32_t rounds = 0;
    while ((1u << rounds) < GetParam())
        ++rounds;
    EXPECT_EQ(res.messages,
              static_cast<std::uint64_t>(rounds) * GetParam());
}

TEST_P(CollNodeSweep, BroadcastReachesEveryone)
{
    Stack stack(config(GetParam()));
    Collectives coll(stack);
    std::vector<Word> out;
    const auto res = coll.broadcast(0, 0xbeef, out);
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(out.size(), GetParam());
    for (Word v : out)
        EXPECT_EQ(v, 0xbeefu);
    // Binomial tree: exactly N-1 messages.
    EXPECT_EQ(res.messages, GetParam() - 1);
}

TEST_P(CollNodeSweep, ReduceSumsEveryContribution)
{
    const std::uint32_t n = GetParam();
    Stack stack(config(n));
    Collectives coll(stack);
    std::vector<Word> in(n);
    Word expect = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        in[i] = (i + 1) * 10;
        expect += in[i];
    }
    Word out = 0;
    const auto res =
        coll.reduce(Collectives::ReduceOp::Sum, in, out, 0);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(out, expect);
    EXPECT_EQ(res.messages, n - 1);
}

TEST_P(CollNodeSweep, AllReduceAgreesEverywhere)
{
    const std::uint32_t n = GetParam();
    Stack stack(config(n));
    Collectives coll(stack);
    std::vector<Word> in(n);
    Word expect = 0;
    Rng rng(n);
    for (auto &v : in) {
        v = static_cast<Word>(rng.below(1000));
        expect += v;
    }
    std::vector<Word> out;
    const auto res =
        coll.allReduce(Collectives::ReduceOp::Sum, in, out);
    ASSERT_TRUE(res.ok);
    for (Word v : out)
        EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollNodeSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u,
                                           13u, 16u, 32u));

TEST(Collectives, NonZeroRoots)
{
    Stack stack(config(8));
    Collectives coll(stack);
    for (NodeId root = 0; root < 8; ++root) {
        std::vector<Word> out;
        ASSERT_TRUE(coll.broadcast(root, 100 + root, out).ok);
        for (Word v : out)
            EXPECT_EQ(v, 100u + root);

        std::vector<Word> in(8, 1);
        Word sum = 0;
        ASSERT_TRUE(coll.reduce(Collectives::ReduceOp::Sum, in, sum,
                                root)
                        .ok);
        EXPECT_EQ(sum, 8u);
    }
}

TEST(Collectives, Operators)
{
    Stack stack(config(5));
    Collectives coll(stack);
    const std::vector<Word> in{3, 9, 1, 7, 5};
    Word out = 0;
    ASSERT_TRUE(coll.reduce(Collectives::ReduceOp::Max, in, out).ok);
    EXPECT_EQ(out, 9u);
    ASSERT_TRUE(coll.reduce(Collectives::ReduceOp::Min, in, out).ok);
    EXPECT_EQ(out, 1u);
    ASSERT_TRUE(coll.reduce(Collectives::ReduceOp::BitOr, in, out).ok);
    EXPECT_EQ(out, (3u | 9u | 1u | 7u | 5u));
}

TEST(Collectives, RepeatedOperationsStayClean)
{
    // Sequence numbers must keep stragglers of one collective from
    // corrupting the next.
    Stack stack(config(8));
    Collectives coll(stack);
    for (int round = 0; round < 10; ++round) {
        std::vector<Word> in(8, static_cast<Word>(round));
        std::vector<Word> out;
        ASSERT_TRUE(
            coll.allReduce(Collectives::ReduceOp::Sum, in, out).ok);
        for (Word v : out)
            EXPECT_EQ(v, 8u * static_cast<Word>(round));
        ASSERT_TRUE(coll.barrier().ok);
    }
}

TEST(Collectives, SurvivesScrambledDelivery)
{
    StackConfig cfg = config(16);
    cfg.maxJitter = 25;
    cfg.seed = 3;
    Stack stack(cfg);
    Collectives coll(stack);
    std::vector<Word> in(16);
    Word expect = 0;
    for (std::uint32_t i = 0; i < 16; ++i) {
        in[i] = i * i;
        expect += in[i];
    }
    std::vector<Word> out;
    ASSERT_TRUE(coll.allReduce(Collectives::ReduceOp::Sum, in, out).ok);
    for (Word v : out)
        EXPECT_EQ(v, expect);
}

TEST(Collectives, GatherCollectsEveryContribution)
{
    for (std::uint32_t n : {2u, 7u, 16u}) {
        Stack stack(config(n));
        Collectives coll(stack);
        std::vector<Word> in(n);
        for (std::uint32_t i = 0; i < n; ++i)
            in[i] = 1000 + i;
        std::vector<Word> out;
        const auto res = coll.gather(in, out, n / 2);
        ASSERT_TRUE(res.ok) << n;
        ASSERT_EQ(out.size(), n);
        for (std::uint32_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i], 1000 + i) << n;
        EXPECT_EQ(res.messages, n - 1);
    }
}

TEST(Collectives, AllToAllPersonalizedExchange)
{
    const std::uint32_t n = 8;
    StackConfig cfg = config(n);
    cfg.maxJitter = 15; // scrambled arrival order must not matter
    Stack stack(cfg);
    Collectives coll(stack);
    std::vector<std::vector<Word>> in(n, std::vector<Word>(n));
    for (NodeId i = 0; i < n; ++i)
        for (NodeId j = 0; j < n; ++j)
            in[i][j] = i * 100 + j;
    std::vector<std::vector<Word>> out;
    const auto res = coll.allToAll(in, out);
    ASSERT_TRUE(res.ok);
    for (NodeId i = 0; i < n; ++i)
        for (NodeId j = 0; j < n; ++j)
            EXPECT_EQ(out[i][j], j * 100 + i) << i << "," << j;
    EXPECT_EQ(res.messages, static_cast<std::uint64_t>(n) * (n - 1));
}

// --- algorithm selectors across substrates -------------------------

StackConfig
configOn(std::uint32_t nodes, Substrate substrate)
{
    StackConfig cfg;
    cfg.nodes = nodes;
    cfg.substrate = substrate;
    return cfg;
}

class CollSubstrate : public ::testing::TestWithParam<Substrate>
{
};

TEST_P(CollSubstrate, RingAllReduceDeliversExactlyOnce)
{
    // Ring works on any node count, including non-powers of two.
    for (std::uint32_t n : {2u, 5u, 8u, 13u}) {
        Stack stack(configOn(n, GetParam()));
        Collectives coll(stack);
        std::vector<Word> in(n);
        Word expect = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            in[i] = 7 * i + 1;
            expect += in[i];
        }
        std::vector<Word> out;
        const auto res = coll.allReduce(Collectives::ReduceOp::Sum,
                                        in, out,
                                        Collectives::Algo::Ring);
        ASSERT_TRUE(res.ok) << n;
        ASSERT_EQ(out.size(), n);
        // Exactly-once: every node holds the full sum — a duplicate
        // RingAcc combine would overshoot, a loss would undershoot.
        for (Word v : out)
            EXPECT_EQ(v, expect) << n;
        // Accumulate chain + forward chain: exactly 2(N-1) messages.
        EXPECT_EQ(res.messages, 2u * (n - 1)) << n;
    }
}

TEST_P(CollSubstrate, RecursiveDoublingAllReduceButterfly)
{
    for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
        Stack stack(configOn(n, GetParam()));
        Collectives coll(stack);
        std::vector<Word> in(n);
        Word expect = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            in[i] = i * i + 3;
            expect += in[i];
        }
        std::vector<Word> out;
        const auto res = coll.allReduce(
            Collectives::ReduceOp::Sum, in, out,
            Collectives::Algo::RecursiveDoubling);
        ASSERT_TRUE(res.ok) << n;
        for (Word v : out)
            EXPECT_EQ(v, expect) << n;
        // Butterfly: every node sends one message per round.
        std::uint32_t lg = 0;
        while ((1u << lg) < n)
            ++lg;
        EXPECT_EQ(res.messages,
                  static_cast<std::uint64_t>(n) * lg)
            << n;
    }
}

TEST_P(CollSubstrate, AlgorithmsAgreeUnderScrambledDelivery)
{
    StackConfig cfg = configOn(8, GetParam());
    cfg.maxJitter = 17; // reorders on cm5/nicam; no-op on cr/rdma
    cfg.seed = 5;
    Stack stack(cfg);
    Collectives coll(stack);
    const std::vector<Word> in{4, 8, 15, 16, 23, 42, 5, 9};
    for (auto algo : {Collectives::Algo::Tree,
                      Collectives::Algo::Ring,
                      Collectives::Algo::RecursiveDoubling}) {
        std::vector<Word> out;
        const auto res =
            coll.allReduce(Collectives::ReduceOp::Max, in, out, algo);
        ASSERT_TRUE(res.ok) << toString(algo);
        for (Word v : out)
            EXPECT_EQ(v, 42u) << toString(algo);
    }
}

INSTANTIATE_TEST_SUITE_P(Substrates, CollSubstrate,
                         ::testing::Values(Substrate::Cm5,
                                           Substrate::Cr,
                                           Substrate::Rdma,
                                           Substrate::Nicam));

TEST(Collectives, RdmaCollectivesNeverRetry)
{
    // On the reliable offloaded fabric the collectives must complete
    // without a single hardware retransmission or sink-full
    // redelivery, whatever the algorithm.
    Stack stack(configOn(8, Substrate::Rdma));
    Collectives coll(stack);
    const std::vector<Word> in(8, 3);
    for (auto algo : {Collectives::Algo::Tree,
                      Collectives::Algo::Ring,
                      Collectives::Algo::RecursiveDoubling}) {
        std::vector<Word> out;
        ASSERT_TRUE(
            coll.allReduce(Collectives::ReduceOp::Sum, in, out, algo)
                .ok);
        for (Word v : out)
            EXPECT_EQ(v, 24u);
    }
    EXPECT_EQ(stack.network().stats().hwRetries, 0u);
    EXPECT_EQ(stack.network().stats().deliveryRetries, 0u);
}

TEST(Collectives, RingAndRdBroadcastDegenerate)
{
    // For broadcast/reduce alone, recursive doubling IS the binomial
    // tree; ring broadcast is the serial forward chain.
    Stack stack(configOn(8, Substrate::Cm5));
    Collectives coll(stack);
    std::vector<Word> out;
    auto res = coll.broadcast(2, 0xfeed, out,
                              Collectives::Algo::RecursiveDoubling);
    ASSERT_TRUE(res.ok);
    for (Word v : out)
        EXPECT_EQ(v, 0xfeedu);
    EXPECT_EQ(res.messages, 7u); // binomial: N-1

    res = coll.broadcast(2, 0xbead, out, Collectives::Algo::Ring);
    ASSERT_TRUE(res.ok);
    for (Word v : out)
        EXPECT_EQ(v, 0xbeadu);
    EXPECT_EQ(res.messages, 7u); // chain: N-1
}

TEST(Collectives, AlgoNamesRoundTrip)
{
    for (const char *name : {"tree", "ring", "rd"}) {
        Collectives::Algo a;
        ASSERT_TRUE(algoFromString(name, a)) << name;
        EXPECT_STREQ(toString(a), name);
    }
    Collectives::Algo a;
    EXPECT_TRUE(algoFromString("recursive-doubling", a));
    EXPECT_EQ(a, Collectives::Algo::RecursiveDoubling);
    EXPECT_FALSE(algoFromString("bogus", a));
}

TEST(Collectives, PerNodeCostScalesLogarithmically)
{
    // Dissemination barrier: each node sends and receives exactly
    // ceil(log2 N) tokens, so per-node instructions grow with log N,
    // not N.
    std::vector<double> per_node;
    for (std::uint32_t n : {4u, 16u, 64u}) {
        Stack stack(config(n));
        Collectives coll(stack);
        const auto res = coll.barrier();
        ASSERT_TRUE(res.ok);
        per_node.push_back(static_cast<double>(res.instructions) /
                           static_cast<double>(n));
    }
    // 4 -> 16 -> 64 nodes: log2 doubles each step (2, 4, 6 rounds).
    EXPECT_NEAR(per_node[1] / per_node[0], 2.0, 0.35);
    EXPECT_NEAR(per_node[2] / per_node[1], 1.5, 0.30);
}

} // namespace
} // namespace msgsim

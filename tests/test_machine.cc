/**
 * @file
 * Unit tests of the machine model: memory, the instrumented
 * processor, the network interface register semantics, and whole
 * -machine construction.
 */

#include <gtest/gtest.h>

#include "cm5net/cm5_network.hh"
#include "machine/machine.hh"
#include "sim/log.hh"

namespace msgsim
{
namespace
{

Machine::NetworkFactory
cm5Factory(std::uint32_t nodes)
{
    Cm5Network::Config cfg;
    cfg.nodes = nodes;
    return [cfg](Simulator &sim) {
        return std::make_unique<Cm5Network>(sim, cfg);
    };
}

struct ThrowOnError
{
    ThrowOnError() { log_detail::throwOnError = true; }
    ~ThrowOnError() { log_detail::throwOnError = false; }
};

TEST(Memory, ReadWriteAndAlloc)
{
    Memory m(64);
    EXPECT_EQ(m.size(), 64u);
    const Addr a = m.alloc(8);
    const Addr b = m.alloc(8);
    EXPECT_NE(a, b);
    m.write(a, 0xdeadbeef);
    EXPECT_EQ(m.read(a), 0xdeadbeefu);
    EXPECT_EQ(m.allocated(), 16u);
}

TEST(Memory, OutOfBoundsPanics)
{
    ThrowOnError guard;
    Memory m(8);
    EXPECT_THROW(m.read(8), log_detail::SimError);
    EXPECT_THROW(m.write(100, 1), log_detail::SimError);
}

TEST(Processor, ChargesByClass)
{
    Memory mem(128);
    Processor p(mem);
    p.regOps(3);
    p.branches(2);
    p.callRet(4);
    p.storeWord(0, 7);
    (void)p.loadWord(0);
    p.storeDouble(2, 8, 9);
    (void)p.loadDouble(2);

    const auto &c = p.acct().counter();
    EXPECT_EQ(c.get(Feature::BaseCost, OpClass::Reg), 9u);
    EXPECT_EQ(c.get(Feature::BaseCost, OpClass::MemStore), 2u);
    EXPECT_EQ(c.get(Feature::BaseCost, OpClass::MemLoad), 2u);
}

TEST(Processor, DoubleOpsMoveTwoWordsForOneCharge)
{
    // The SPARC ldd/std property that makes a 4-word packet cost two
    // memory operations.
    Memory mem(128);
    Processor p(mem);
    p.storeDouble(10, 111, 222);
    EXPECT_EQ(mem.read(10), 111u);
    EXPECT_EQ(mem.read(11), 222u);
    const auto [w0, w1] = p.loadDouble(10);
    EXPECT_EQ(w0, 111u);
    EXPECT_EQ(w1, 222u);
    EXPECT_EQ(p.acct().counter().categoryTotal(Category::Mem), 2u);
}

TEST(Machine, BuildsNodesAndNetwork)
{
    Machine::Config cfg;
    cfg.nodes = 8;
    cfg.dataWords = 4;
    Machine m(cfg, cm5Factory(8));
    EXPECT_EQ(m.nodeCount(), 8u);
    for (NodeId i = 0; i < 8; ++i)
        EXPECT_EQ(m.node(i).id(), i);
    EXPECT_FALSE(m.network().features().inOrderDelivery);
}

TEST(NetIface, SendAssemblesAndLaunchesPacket)
{
    Machine::Config cfg;
    cfg.nodes = 2;
    Machine m(cfg, cm5Factory(2));
    Node &n0 = m.node(0);
    Accounting &a = n0.acct();

    n0.ni().writeSendCtl(a, 1, HwTag::UserAm, hdr::pack(3, 0));
    n0.ni().writeSendDouble(a, 10, 11);
    n0.ni().writeSendDouble(a, 12, 13); // 4th word: launches
    m.sim().run();

    NetIface &ni1 = m.node(1).ni();
    ASSERT_TRUE(ni1.hwRecvPending());
    const Packet *p = ni1.hwPeekRecv();
    EXPECT_EQ(p->src, 0u);
    EXPECT_EQ(p->tag, HwTag::UserAm);
    EXPECT_EQ(p->data, (std::vector<Word>{10, 11, 12, 13}));

    // Charges: 3 devStores on the sender.
    EXPECT_EQ(a.counter().categoryTotal(Category::Dev), 3u);
}

TEST(NetIface, StatusReflectsSendAndRecv)
{
    Machine::Config cfg;
    cfg.nodes = 2;
    Machine m(cfg, cm5Factory(2));
    Node &n0 = m.node(0);
    Node &n1 = m.node(1);

    Word s = n1.ni().readStatus(n1.acct());
    EXPECT_TRUE(s & ni_status::sendOk);
    EXPECT_FALSE(s & ni_status::recvReady);

    n0.ni().writeSendCtl(n0.acct(), 1, HwTag::Control, hdr::pack(1, 0));
    n0.ni().writeSendDouble(n0.acct(), 1, 2);
    n0.ni().writeSendDouble(n0.acct(), 3, 4);
    m.sim().run();

    s = n1.ni().readStatus(n1.acct());
    EXPECT_TRUE(s & ni_status::recvReady);
    const auto tag = static_cast<HwTag>((s >> ni_status::tagShift) &
                                        ni_status::tagMask);
    EXPECT_EQ(tag, HwTag::Control);
}

TEST(NetIface, RecvReadsConsumeThePacket)
{
    Machine::Config cfg;
    cfg.nodes = 2;
    Machine m(cfg, cm5Factory(2));
    Node &n0 = m.node(0);
    Node &n1 = m.node(1);

    n0.ni().writeSendCtl(n0.acct(), 1, HwTag::UserAm, 0xabcd);
    n0.ni().writeSendDouble(n0.acct(), 5, 6);
    n0.ni().writeSendDouble(n0.acct(), 7, 8);
    m.sim().run();

    Accounting &a = n1.acct();
    EXPECT_EQ(n1.ni().readRecvHeader(a), 0xabcdu);
    auto [w0, w1] = n1.ni().readRecvDouble(a);
    auto [w2, w3] = n1.ni().readRecvDouble(a);
    EXPECT_EQ(w0, 5u);
    EXPECT_EQ(w3, 8u);
    EXPECT_FALSE(n1.ni().hwRecvPending()); // popped after last word
}

TEST(NetIface, CrcDiscardOnDelivery)
{
    Machine::Config cfg;
    cfg.nodes = 2;
    Cm5Network::Config nc;
    nc.nodes = 2;
    Machine m(cfg, [&nc](Simulator &sim) {
        auto net = std::make_unique<Cm5Network>(sim, nc);
        net->faults().scriptCorrupt(0);
        return net;
    });
    Node &n0 = m.node(0);
    Node &n1 = m.node(1);

    n0.ni().writeSendCtl(n0.acct(), 1, HwTag::UserAm, 0);
    n0.ni().writeSendDouble(n0.acct(), 1, 2);
    n0.ni().writeSendDouble(n0.acct(), 3, 4);
    m.sim().run();

    EXPECT_FALSE(n1.ni().hwRecvPending()); // detected and discarded
    EXPECT_EQ(n1.ni().crcDiscards(), 1u);
}

TEST(NetIface, CapacityRefusalTriggersBackpressure)
{
    Machine::Config cfg;
    cfg.nodes = 2;
    cfg.recvCapacity = 2;
    Machine m(cfg, cm5Factory(2));
    Node &n0 = m.node(0);
    Node &n1 = m.node(1);

    for (int k = 0; k < 4; ++k) {
        n0.ni().writeSendCtl(n0.acct(), 1, HwTag::UserAm,
                             static_cast<Word>(k));
        n0.ni().writeSendDouble(n0.acct(), 1, 2);
        n0.ni().writeSendDouble(n0.acct(), 3, 4);
    }
    m.sim().run(10000);
    // Only two fit; the other two keep retrying in the network.
    EXPECT_GT(n1.ni().recvRefusals(), 0u);

    // Drain one packet; the network retry eventually lands it.
    Accounting &a = n1.acct();
    (void)n1.ni().readRecvHeader(a);
    (void)n1.ni().readRecvDouble(a);
    (void)n1.ni().readRecvDouble(a);
    m.sim().run(10000);
    EXPECT_TRUE(n1.ni().hwRecvPending());
}

TEST(NetIface, AcceptFnRejects)
{
    Machine::Config cfg;
    cfg.nodes = 2;
    Machine m(cfg, cm5Factory(2));
    Node &n0 = m.node(0);
    Node &n1 = m.node(1);
    bool accept = false;
    n1.ni().setAcceptFn([&accept](const Packet &) { return accept; });

    n0.ni().writeSendCtl(n0.acct(), 1, HwTag::XferData, 0);
    n0.ni().writeSendDouble(n0.acct(), 1, 2);
    n0.ni().writeSendDouble(n0.acct(), 3, 4);
    m.sim().run(100);
    EXPECT_FALSE(n1.ni().hwRecvPending());
    EXPECT_GT(n1.ni().acceptRefusals(), 0u);

    accept = true;
    m.sim().run(100000);
    EXPECT_TRUE(n1.ni().hwRecvPending());
}

TEST(NetIface, OddDataWordsRejected)
{
    ThrowOnError guard;
    Machine::Config cfg;
    cfg.nodes = 2;
    cfg.dataWords = 3; // must be even (ldd/std granularity)
    EXPECT_THROW(Machine(cfg, cm5Factory(2)), log_detail::SimError);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the packet tracer and event-level invariants of whole
 * protocol runs observed through it.
 */

#include <gtest/gtest.h>

#include <map>

#include "net/tracer.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"
#include "sim/trace_session.hh"

namespace msgsim
{
namespace
{

Packet
mk(NodeId s, NodeId d, std::uint64_t seq)
{
    Packet p(s, d, HwTag::UserAm, 0xaa, {1, 2});
    p.injectSeq = seq;
    return p;
}

TEST(Tracer, RecordsAndCounts)
{
    PacketTracer t(16);
    t.record(5, TraceEvent::Inject, mk(0, 1, 0));
    t.record(9, TraceEvent::Deliver, mk(0, 1, 0));
    t.record(12, TraceEvent::Drop, mk(0, 2, 1));

    EXPECT_EQ(t.observed(), 3u);
    EXPECT_EQ(t.observed(TraceEvent::Inject), 1u);
    EXPECT_EQ(t.observed(TraceEvent::Drop), 1u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].when, 5u);
    EXPECT_EQ(snap[2].event, TraceEvent::Drop);
}

TEST(Tracer, RingEvictsOldestButKeepsCounting)
{
    PacketTracer t(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(i, TraceEvent::Inject, mk(0, 1, i));
    EXPECT_EQ(t.observed(), 10u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().injectSeq, 6u); // oldest retained
    EXPECT_EQ(snap.back().injectSeq, 9u);
}

TEST(Tracer, CapacityZeroClampsToOneInsteadOfCrashing)
{
    // Regression: a zero-capacity ring used to be constructible and
    // record() would then index an empty vector.
    PacketTracer t(0);
    t.record(1, TraceEvent::Inject, mk(0, 1, 0));
    t.record(2, TraceEvent::Deliver, mk(0, 1, 0));
    EXPECT_EQ(t.observed(), 2u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].when, 2u); // only the newest record retained
}

TEST(Tracer, ObserverSeesEveryRecordAndBridgesToTraceSession)
{
    PacketTracer t(4);
    std::uint64_t seen = 0;
    t.setObserver([&](const TraceRecord &) { ++seen; });
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(i, TraceEvent::Inject, mk(0, 1, i));
    EXPECT_EQ(seen, 10u); // evicted records were still observed

    // The bridge lands hardware events as instants on the session
    // timeline: injections on the source track, deliveries on the
    // destination track.
    TraceSession session;
    attachTraceBridge(t, session);
    t.record(20, TraceEvent::Inject, mk(2, 3, 7));
    t.record(25, TraceEvent::Deliver, mk(2, 3, 7));
    const auto recs = session.snapshot();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].kind, TraceSession::Kind::Instant);
    EXPECT_STREQ(recs[0].cat, "hw");
    EXPECT_STREQ(recs[0].name, "inject");
    EXPECT_EQ(recs[0].node, 2u);
    EXPECT_EQ(recs[0].start, 20u);
    EXPECT_EQ(recs[1].node, 3u);
    EXPECT_EQ(recs[1].start, 25u);
}

TEST(Tracer, SelectAndDump)
{
    PacketTracer t(16);
    t.record(1, TraceEvent::Inject, mk(0, 1, 0));
    t.record(2, TraceEvent::Inject, mk(0, 2, 1));
    t.record(3, TraceEvent::Deliver, mk(0, 2, 1));
    const auto to2 = t.select(
        [](const TraceRecord &r) { return r.dst == 2; });
    EXPECT_EQ(to2.size(), 2u);
    const std::string dump = t.dump();
    EXPECT_NE(dump.find("inject"), std::string::npos);
    EXPECT_NE(dump.find("deliver"), std::string::npos);
    EXPECT_NE(dump.find("seq=1"), std::string::npos);
}

TEST(Tracer, ObservesWholeProtocolRun)
{
    Stack stack(StackConfig{});
    PacketTracer tracer;
    stack.network().setTracer(&tracer);

    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 16; // 4 data packets + req + reply + ack = 7 injections
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);

    EXPECT_EQ(tracer.observed(TraceEvent::Inject), 7u);
    EXPECT_EQ(tracer.observed(TraceEvent::Deliver), 7u);
    EXPECT_EQ(tracer.observed(TraceEvent::Drop), 0u);

    // Event-level invariant: every delivery follows its injection.
    std::map<std::uint64_t, Tick> injected;
    for (const auto &rec : tracer.snapshot())
        if (rec.event == TraceEvent::Inject)
            injected[rec.injectSeq] = rec.when;
    for (const auto &rec : tracer.snapshot())
        if (rec.event == TraceEvent::Deliver) {
            ASSERT_TRUE(injected.count(rec.injectSeq));
            EXPECT_GT(rec.when, injected[rec.injectSeq]);
        }
}

TEST(Tracer, AccountsForEveryPacketUnderFaults)
{
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.faults.dropRate = 0.1;
    cfg.faults.corruptRate = 0.05;
    cfg.faults.seed = 21;
    Stack stack(cfg);
    PacketTracer tracer;
    stack.network().setTracer(&tracer);

    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 512;
    p.eventMode = true;
    p.retxTimeout = 600;
    p.maxRetx = 512;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);

    // Conservation: injections = deliveries + drops (corruptions are
    // delivered and then CRC-discarded at the NI).
    EXPECT_EQ(tracer.observed(TraceEvent::Inject),
              tracer.observed(TraceEvent::Deliver) +
                  tracer.observed(TraceEvent::Drop));
    EXPECT_GT(tracer.observed(TraceEvent::Drop), 0u);
}

TEST(Tracer, SeesCrHardwareRetries)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 2;
    cfg.faults.dropRate = 0.5;
    cfg.faults.seed = 4;
    CrNetwork net(sim, cfg);
    PacketTracer tracer;
    net.setTracer(&tracer);
    net.attach(1, [](Packet &&) { return true; });
    for (Word i = 0; i < 50; ++i)
        net.inject(Packet(0, 1, HwTag::StreamData, i, {1, 2, 3, 4}));
    sim.run();
    EXPECT_EQ(tracer.observed(TraceEvent::Deliver), 50u);
    EXPECT_GT(tracer.observed(TraceEvent::HwRetry), 10u);
    EXPECT_EQ(tracer.observed(TraceEvent::Drop), 0u);
}

TEST(Tracer, IsAPureObserver)
{
    // Attaching a tracer must not change a single instruction count.
    auto run = [](bool traced) {
        Stack stack(StackConfig{});
        PacketTracer tracer;
        if (traced)
            stack.network().setTracer(&tracer);
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = 64;
        return proto.run(p).counts.paperTotal();
    };
    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Whole-system integration tests: many nodes, mixed protocols,
 * randomized AM workloads, concurrent transfers, and both
 * substrates under one roof.
 */

#include <gtest/gtest.h>

#include <map>

#include "hlam/hl_stack.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

TEST(Integration, RandomAmWorkloadAcross16Nodes)
{
    StackConfig cfg;
    cfg.nodes = 16;
    cfg.maxJitter = 20;
    cfg.seed = 2024;
    Stack stack(cfg);

    // Every node registers an accumulator handler; messages carry
    // (sender, value); we check global sums.
    std::map<NodeId, std::uint64_t> received_sum;
    std::vector<int> handler_ids(16);
    for (NodeId i = 0; i < 16; ++i)
        handler_ids[i] = stack.cmam(i).registerHandler(
            [&received_sum, i](NodeId, const std::vector<Word> &args) {
                received_sum[i] += args[1];
            });

    Rng rng(555);
    std::uint64_t expected_total = 0;
    for (int k = 0; k < 500; ++k) {
        const NodeId s = static_cast<NodeId>(rng.below(16));
        NodeId d = static_cast<NodeId>(rng.below(16));
        if (d == s)
            d = (d + 1) % 16;
        const Word v = static_cast<Word>(rng.below(1000));
        expected_total += v;
        stack.cmam(s).am4(d, handler_ids[d], {s, v});
    }
    stack.settle();
    for (NodeId i = 0; i < 16; ++i)
        stack.cmam(i).poll();

    std::uint64_t got_total = 0;
    for (const auto &[node, sum] : received_sum)
        got_total += sum;
    EXPECT_EQ(got_total, expected_total);
}

TEST(Integration, ConcurrentFiniteTransfersManyPairs)
{
    StackConfig cfg;
    cfg.nodes = 8;
    Stack stack(cfg);
    FiniteXfer proto(stack);

    // Ring of transfers: i -> (i+1) % 8, sequenced through the
    // calibration driver one at a time but sharing all state tables.
    for (NodeId i = 0; i < 8; ++i) {
        FiniteXferParams p;
        p.src = i;
        p.dst = (i + 1) % 8;
        p.words = 64 + 4 * i;
        p.fillSeed = 1000 + i;
        const auto res = proto.run(p);
        EXPECT_TRUE(res.dataOk) << "pair " << i;
    }
}

TEST(Integration, InterleavedEventModeTransfers)
{
    // Two finite transfers in opposite directions, event mode, on a
    // jittery network — their control traffic interleaves on the
    // same CMAM layers.
    StackConfig cfg;
    cfg.nodes = 4;
    cfg.maxJitter = 15;
    Stack stack(cfg);
    FiniteXfer proto(stack);

    FiniteXferParams a;
    a.src = 0;
    a.dst = 1;
    a.words = 64;
    a.eventMode = true;
    const auto ra = proto.run(a);
    EXPECT_TRUE(ra.dataOk);

    FiniteXferParams b;
    b.src = 1;
    b.dst = 0;
    b.words = 128;
    b.eventMode = true;
    const auto rb = proto.run(b);
    EXPECT_TRUE(rb.dataOk);
}

TEST(Integration, StreamsAndTransfersShareAStack)
{
    StackConfig cfg;
    cfg.nodes = 4;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    FiniteXfer fin(stack);
    StreamProtocol str(stack);

    FiniteXferParams fp;
    fp.words = 64;
    EXPECT_TRUE(fin.run(fp).dataOk);

    StreamParams sp;
    sp.words = 128;
    EXPECT_TRUE(str.run(sp).dataOk);

    fp.words = 256;
    fp.src = 2;
    fp.dst = 3;
    EXPECT_TRUE(fin.run(fp).dataOk);
}

TEST(Integration, SubstrateComparisonEndToEnd)
{
    // The paper's bottom line, end to end on live simulations: the
    // same logical workload costs far less software on the CR
    // substrate.
    const std::uint32_t words = 512;

    StackConfig cfg;
    cfg.nodes = 2;
    cfg.order = swapAdjacentFactory();
    Stack cm5(cfg);
    StreamProtocol proto(cm5);
    StreamParams sp;
    sp.words = words;
    const auto r_cm5 = proto.run(sp);
    ASSERT_TRUE(r_cm5.dataOk);

    HlStackConfig hcfg;
    hcfg.nodes = 2;
    HlStack hl(hcfg);
    HlStreamParams hp;
    hp.words = words;
    const auto r_hl = runHlStream(hl, hp);
    ASSERT_TRUE(r_hl.dataOk);

    EXPECT_LT(r_hl.counts.paperTotal() * 2,
              r_cm5.counts.paperTotal());
}

TEST(Integration, BigMachineManyStreams)
{
    StackConfig cfg;
    cfg.nodes = 32;
    cfg.maxJitter = 10;
    Stack stack(cfg);
    StreamProtocol proto(stack);
    for (int k = 0; k < 8; ++k) {
        StreamParams p;
        p.src = static_cast<NodeId>(k);
        p.dst = static_cast<NodeId>(31 - k);
        p.words = 64;
        p.fillSeed = static_cast<std::uint64_t>(k) + 1;
        EXPECT_TRUE(proto.run(p).dataOk) << k;
    }
}

TEST(Integration, LargeTransferStressCalibration)
{
    Stack stack(StackConfig{});
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 65536; // 16K packets
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    // Linear cost law holds at scale.
    EXPECT_EQ(res.counts.src.paperTotal(), 77u + 24u * 16384u);
    EXPECT_EQ(res.counts.dst.paperTotal(), 140u + 21u * 16384u);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Calibration tests: the simulator must reproduce the paper's
 * Tables 1, 2 and 3 cell-for-cell at n = 4 (see DESIGN.md 2.1 for
 * the derivation of the per-cell targets, all of which are exact
 * fits of the published numbers).
 */

#include <gtest/gtest.h>

#include "hlam/hl_stack.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

StackConfig
cm5Config()
{
    StackConfig cfg;
    cfg.substrate = Substrate::Cm5;
    cfg.nodes = 4;
    cfg.dataWords = 4;
    return cfg;
}

std::uint64_t
cat(const InstrCounter &c, Feature f, Category k)
{
    return c.category(f, k);
}

// ------------------------------------------------------------------
// Table 1: single-packet delivery, row by row.
// ------------------------------------------------------------------

TEST(Table1, SinglePacketRowBreakdown)
{
    Stack stack(cm5Config());
    const auto res = runSinglePacket(stack, {});
    ASSERT_TRUE(res.dataOk);

    auto srow = [&](CostRow r) {
        return res.srcRows[static_cast<std::size_t>(r)];
    };
    auto drow = [&](CostRow r) {
        return res.dstRows[static_cast<std::size_t>(r)];
    };

    // Source column.
    EXPECT_EQ(srow(CostRow::CallReturn), 3u);
    EXPECT_EQ(srow(CostRow::NiSetup), 5u);
    EXPECT_EQ(srow(CostRow::WriteNi), 2u);
    EXPECT_EQ(srow(CostRow::ReadNi), 0u);
    EXPECT_EQ(srow(CostRow::CheckStatus), 7u);
    EXPECT_EQ(srow(CostRow::ControlFlow), 3u);
    EXPECT_EQ(res.counts.src.paperTotal(), 20u);

    // Destination column.
    EXPECT_EQ(drow(CostRow::CallReturn), 10u);
    EXPECT_EQ(drow(CostRow::NiSetup), 0u);
    EXPECT_EQ(drow(CostRow::WriteNi), 0u);
    EXPECT_EQ(drow(CostRow::ReadNi), 3u);
    EXPECT_EQ(drow(CostRow::CheckStatus), 12u);
    EXPECT_EQ(drow(CostRow::ControlFlow), 2u);
    EXPECT_EQ(res.counts.dst.paperTotal(), 27u);
}

TEST(Table1, IdenticalOnCrSubstrate)
{
    // Section 4.1: "the costs ... are identical to the CMAM case"
    // because the NI is the same.
    StackConfig cfg = cm5Config();
    cfg.substrate = Substrate::Cr;
    Stack stack(cfg);
    const auto res = runSinglePacket(stack, {});
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.counts.src.paperTotal(), 20u);
    EXPECT_EQ(res.counts.dst.paperTotal(), 27u);
}

// ------------------------------------------------------------------
// Table 2 + Table 3: finite-sequence, multi-packet delivery.
// ------------------------------------------------------------------

struct FiniteCase
{
    std::uint32_t words;
    // Feature totals [src, dst]: base, buf, ord, ft; grand totals.
    std::uint64_t base_s, base_d, buf_s, buf_d, ord_s, ord_d, ft_s,
        ft_d, tot_s, tot_d;
};

class FiniteTable : public ::testing::TestWithParam<FiniteCase>
{
};

TEST_P(FiniteTable, FeatureTotalsMatchPaper)
{
    const auto &c = GetParam();
    Stack stack(cm5Config());
    FiniteXfer proto(stack);
    FiniteXferParams params;
    params.words = c.words;
    const auto res = proto.run(params);
    ASSERT_TRUE(res.dataOk);

    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;
    EXPECT_EQ(s.featureTotal(Feature::BaseCost), c.base_s);
    EXPECT_EQ(d.featureTotal(Feature::BaseCost), c.base_d);
    EXPECT_EQ(s.featureTotal(Feature::BufferMgmt), c.buf_s);
    EXPECT_EQ(d.featureTotal(Feature::BufferMgmt), c.buf_d);
    EXPECT_EQ(s.featureTotal(Feature::InOrderDelivery), c.ord_s);
    EXPECT_EQ(d.featureTotal(Feature::InOrderDelivery), c.ord_d);
    EXPECT_EQ(s.featureTotal(Feature::FaultTolerance), c.ft_s);
    EXPECT_EQ(d.featureTotal(Feature::FaultTolerance), c.ft_d);
    EXPECT_EQ(s.paperTotal(), c.tot_s);
    EXPECT_EQ(d.paperTotal(), c.tot_d);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, FiniteTable,
    ::testing::Values(
        // 16 words (Table 3 sums; see DESIGN.md on the 285/397 note).
        FiniteCase{16, 91, 90, 47, 101, 8, 13, 27, 20, 173, 224},
        // 1024 words (Table 2 as printed).
        FiniteCase{1024, 5635, 4626, 47, 101, 512, 769, 27, 20, 6221,
                   5516}));

TEST(Table3, FiniteCategoryCells16Words)
{
    Stack stack(cm5Config());
    FiniteXfer proto(stack);
    const auto res = proto.run({});
    ASSERT_TRUE(res.dataOk);
    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;

    using enum Category;
    // Source: reg/mem/dev per feature.
    EXPECT_EQ(cat(s, Feature::BaseCost, Reg), 62u);
    EXPECT_EQ(cat(s, Feature::BaseCost, Mem), 9u);
    EXPECT_EQ(cat(s, Feature::BaseCost, Dev), 20u);
    EXPECT_EQ(cat(s, Feature::BufferMgmt, Reg), 36u);
    EXPECT_EQ(cat(s, Feature::BufferMgmt, Mem), 1u);
    EXPECT_EQ(cat(s, Feature::BufferMgmt, Dev), 10u);
    EXPECT_EQ(cat(s, Feature::InOrderDelivery, Reg), 8u);
    EXPECT_EQ(cat(s, Feature::InOrderDelivery, Mem), 0u);
    EXPECT_EQ(cat(s, Feature::FaultTolerance, Reg), 22u);
    EXPECT_EQ(cat(s, Feature::FaultTolerance, Dev), 5u);
    EXPECT_EQ(s.categoryTotal(Reg), 128u);
    EXPECT_EQ(s.categoryTotal(Mem), 10u);
    EXPECT_EQ(s.categoryTotal(Dev), 35u);

    // Destination.
    EXPECT_EQ(cat(d, Feature::BaseCost, Reg), 62u);
    EXPECT_EQ(cat(d, Feature::BaseCost, Mem), 11u);
    EXPECT_EQ(cat(d, Feature::BaseCost, Dev), 17u);
    EXPECT_EQ(cat(d, Feature::BufferMgmt, Reg), 79u);
    EXPECT_EQ(cat(d, Feature::BufferMgmt, Mem), 12u);
    EXPECT_EQ(cat(d, Feature::BufferMgmt, Dev), 10u);
    EXPECT_EQ(cat(d, Feature::InOrderDelivery, Reg), 13u);
    EXPECT_EQ(cat(d, Feature::FaultTolerance, Reg), 14u);
    EXPECT_EQ(cat(d, Feature::FaultTolerance, Mem), 1u);
    EXPECT_EQ(cat(d, Feature::FaultTolerance, Dev), 5u);
    EXPECT_EQ(d.categoryTotal(Reg), 168u);
    EXPECT_EQ(d.categoryTotal(Mem), 24u);
    EXPECT_EQ(d.categoryTotal(Dev), 32u);
}

TEST(Table3, FiniteCategoryCells1024Words)
{
    Stack stack(cm5Config());
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 1024;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;

    using enum Category;
    EXPECT_EQ(cat(s, Feature::BaseCost, Reg), 3842u);
    EXPECT_EQ(cat(s, Feature::BaseCost, Mem), 513u);
    EXPECT_EQ(cat(s, Feature::BaseCost, Dev), 1280u);
    EXPECT_EQ(cat(s, Feature::InOrderDelivery, Reg), 512u);
    EXPECT_EQ(s.categoryTotal(Reg), 4412u);
    EXPECT_EQ(s.categoryTotal(Mem), 514u);
    EXPECT_EQ(s.categoryTotal(Dev), 1295u);

    EXPECT_EQ(cat(d, Feature::BaseCost, Reg), 3086u);
    EXPECT_EQ(cat(d, Feature::BaseCost, Mem), 515u);
    EXPECT_EQ(cat(d, Feature::BaseCost, Dev), 1025u);
    EXPECT_EQ(cat(d, Feature::InOrderDelivery, Reg), 769u);
    EXPECT_EQ(d.categoryTotal(Reg), 3948u);
    EXPECT_EQ(d.categoryTotal(Mem), 528u);
    EXPECT_EQ(d.categoryTotal(Dev), 1040u);
}

// ------------------------------------------------------------------
// Table 2 + Table 3: indefinite-sequence, multi-packet delivery.
// Measurement condition: exactly half the packets arrive out of
// order (SwapAdjacent policy), per-packet acknowledgements.
// ------------------------------------------------------------------

StackConfig
cm5SwapConfig()
{
    StackConfig cfg = cm5Config();
    cfg.order = swapAdjacentFactory();
    return cfg;
}

struct StreamCase
{
    std::uint32_t words;
    std::uint64_t base_s, base_d, ord_s, ord_d, ft_s, ft_d, tot_s,
        tot_d;
};

class StreamTable : public ::testing::TestWithParam<StreamCase>
{
};

TEST_P(StreamTable, FeatureTotalsMatchPaper)
{
    const auto &c = GetParam();
    Stack stack(cm5SwapConfig());
    StreamProtocol proto(stack);
    StreamParams params;
    params.words = c.words;
    const auto res = proto.run(params);
    ASSERT_TRUE(res.dataOk);
    // The measurement condition held: exactly half out of order.
    EXPECT_EQ(res.oooArrivals, res.packets / 2);

    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;
    EXPECT_EQ(s.featureTotal(Feature::BaseCost), c.base_s);
    EXPECT_EQ(d.featureTotal(Feature::BaseCost), c.base_d);
    EXPECT_EQ(s.featureTotal(Feature::BufferMgmt), 0u);
    EXPECT_EQ(d.featureTotal(Feature::BufferMgmt), 0u);
    EXPECT_EQ(s.featureTotal(Feature::InOrderDelivery), c.ord_s);
    EXPECT_EQ(d.featureTotal(Feature::InOrderDelivery), c.ord_d);
    EXPECT_EQ(s.featureTotal(Feature::FaultTolerance), c.ft_s);
    EXPECT_EQ(d.featureTotal(Feature::FaultTolerance), c.ft_d);
    EXPECT_EQ(s.paperTotal(), c.tot_s);
    EXPECT_EQ(d.paperTotal(), c.tot_d);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, StreamTable,
    ::testing::Values(
        // 16 words (Table 2 as printed: totals 216 / 265 / 481).
        StreamCase{16, 80, 69, 20, 116, 116, 80, 216, 265},
        // 1024 words (Table 2: totals 13824 / 16141 / 29965).
        StreamCase{1024, 5120, 3597, 1280, 7424, 7424, 5120, 13824,
                   16141}));

TEST(Table3, StreamCategoryCells1024Words)
{
    Stack stack(cm5SwapConfig());
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 1024;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;

    using enum Category;
    EXPECT_EQ(cat(s, Feature::BaseCost, Reg), 3584u);
    EXPECT_EQ(cat(s, Feature::BaseCost, Mem), 256u);
    EXPECT_EQ(cat(s, Feature::BaseCost, Dev), 1280u);
    EXPECT_EQ(cat(s, Feature::InOrderDelivery, Reg), 512u);
    EXPECT_EQ(cat(s, Feature::InOrderDelivery, Mem), 768u);
    EXPECT_EQ(cat(s, Feature::FaultTolerance, Reg), 5632u);
    EXPECT_EQ(cat(s, Feature::FaultTolerance, Mem), 512u);
    EXPECT_EQ(cat(s, Feature::FaultTolerance, Dev), 1280u);
    EXPECT_EQ(s.categoryTotal(Reg), 9728u);
    EXPECT_EQ(s.categoryTotal(Mem), 1536u);
    EXPECT_EQ(s.categoryTotal(Dev), 2560u);

    EXPECT_EQ(cat(d, Feature::BaseCost, Reg), 2572u);
    EXPECT_EQ(cat(d, Feature::BaseCost, Mem), 0u);
    EXPECT_EQ(cat(d, Feature::BaseCost, Dev), 1025u);
    EXPECT_EQ(cat(d, Feature::InOrderDelivery, Reg), 4480u);
    EXPECT_EQ(cat(d, Feature::InOrderDelivery, Mem), 2944u);
    EXPECT_EQ(cat(d, Feature::FaultTolerance, Reg), 3584u);
    EXPECT_EQ(cat(d, Feature::FaultTolerance, Mem), 256u);
    EXPECT_EQ(cat(d, Feature::FaultTolerance, Dev), 1280u);
    EXPECT_EQ(d.categoryTotal(Reg), 10636u);
    EXPECT_EQ(d.categoryTotal(Mem), 3200u);
    EXPECT_EQ(d.categoryTotal(Dev), 2305u);
}

// ------------------------------------------------------------------
// Section 4.1: the high-level-features implementations reduce to the
// base cost.
// ------------------------------------------------------------------

TEST(HighLevel, FiniteReducesToBaseCost)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlXferParams p;
    p.words = 1024;
    const auto res = runHlFinite(stack, p);
    ASSERT_TRUE(res.dataOk);
    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;

    // Source: exactly the CMAM base cost (3 + 22p = 5635).
    EXPECT_EQ(s.paperTotal(), 5635u);
    EXPECT_EQ(s.featureTotal(Feature::BaseCost), 5635u);
    // Destination: slightly below the CMAM base (one reg fewer per
    // packet) plus the negligible buffer-table insert.
    EXPECT_EQ(d.featureTotal(Feature::BaseCost), 4626u - 256u);
    EXPECT_EQ(d.featureTotal(Feature::BufferMgmt), 13u);
    EXPECT_EQ(d.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(d.featureTotal(Feature::FaultTolerance), 0u);
}

TEST(HighLevel, StreamIsPureBaseCost)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlStreamParams p;
    p.words = 1024;
    const auto res = runHlStream(stack, p);
    ASSERT_TRUE(res.dataOk);
    const auto &s = res.counts.src;
    const auto &d = res.counts.dst;
    EXPECT_EQ(s.paperTotal(), 5120u);          // 20p
    EXPECT_EQ(d.paperTotal(), 13u + 14u * 256u); // 13 + 14p
    EXPECT_EQ(s.featureTotal(Feature::BaseCost), s.paperTotal());
    EXPECT_EQ(d.featureTotal(Feature::BaseCost), d.paperTotal());
}

TEST(HighLevel, SeventyPercentReductionForStreams)
{
    // Section 4.1: "the higher-level network features reduce the
    // software costs in the messaging layer by ~70%", independent of
    // message size.
    for (std::uint32_t words : {16u, 64u, 256u, 1024u}) {
        Stack cm5(cm5SwapConfig());
        StreamProtocol proto(cm5);
        StreamParams sp;
        sp.words = words;
        const auto base = proto.run(sp);

        HlStackConfig cfg;
        HlStack hl(cfg);
        HlStreamParams hp;
        hp.words = words;
        const auto better = runHlStream(hl, hp);

        const double reduction =
            1.0 - static_cast<double>(better.counts.paperTotal()) /
                      static_cast<double>(base.counts.paperTotal());
        EXPECT_GT(reduction, 0.65) << "words=" << words;
        EXPECT_LT(reduction, 0.75) << "words=" << words;
    }
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the RDMA/verbs substrate (src/rdmanet): per-QP in-order
 * reliable delivery in the fabric, RNR and CQ-overflow backpressure,
 * the MR registration cache, the shape shift of the instruction bill
 * (1994 overheads zero, completion-poll and registration nonzero),
 * and the design rule that observability never changes counts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prof/profile.hh"
#include "rdmanet/rdma_network.hh"
#include "rdmanet/rdma_stack.hh"
#include "sim/event.hh"

namespace msgsim
{
namespace
{

// ----------------------------------------------------------------
// Fabric guarantees.
// ----------------------------------------------------------------

TEST(RdmaNetwork, DeliversInOrderPerFlow)
{
    Simulator sim;
    RdmaNetwork::Config cfg;
    cfg.nodes = 4;
    RdmaNetwork net(sim, cfg);

    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 32; ++i)
        EXPECT_TRUE(net.inject(
            Packet(0, 1, HwTag::XferData, i, {i, i, i, i})));
    sim.run();
    ASSERT_EQ(got.size(), 32u);
    for (Word i = 0; i < 32; ++i)
        EXPECT_EQ(got[i], i);
    const auto f = net.features();
    EXPECT_TRUE(f.inOrderDelivery);
    EXPECT_TRUE(f.reliableDelivery);
    EXPECT_TRUE(f.acceptanceIndependent);
    EXPECT_TRUE(f.zeroCopy);
    EXPECT_TRUE(f.completionQueue);
    EXPECT_FALSE(f.offloadDispatch);
}

TEST(RdmaNetwork, LinkFaultsAreAbsorbedByHardwareRetry)
{
    Simulator sim;
    RdmaNetwork::Config cfg;
    cfg.nodes = 2;
    cfg.faults.dropRate = 0.3;
    cfg.faults.corruptRate = 0.2;
    cfg.faults.seed = 11;
    RdmaNetwork net(sim, cfg);

    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        EXPECT_TRUE(p.checksumOk());
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 64; ++i)
        net.inject(Packet(0, 1, HwTag::XferData, i, {i, 0, 0, 0}));
    sim.run();
    // Every packet arrives intact, exactly once, in order — the
    // faults only cost link-level retransmissions.
    ASSERT_EQ(got.size(), 64u);
    for (Word i = 0; i < 64; ++i)
        EXPECT_EQ(got[i], i);
    EXPECT_GT(net.stats().hwRetries, 0u);
    EXPECT_EQ(net.stats().dropped, 0u);
    EXPECT_EQ(net.stats().corrupted, 0u);
}

TEST(RdmaNetwork, StalledFlowHoldsYoungerPackets)
{
    Simulator sim;
    RdmaNetwork::Config cfg;
    cfg.nodes = 2;
    RdmaNetwork net(sim, cfg);

    int refusals = 2;
    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        if (refusals > 0) {
            --refusals;
            return false; // receiver not ready: fabric must retry
        }
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 8; ++i)
        net.inject(Packet(0, 1, HwTag::XferData, i, {i, 0, 0, 0}));
    sim.run();
    ASSERT_EQ(got.size(), 8u);
    for (Word i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], i); // order survived the stall
    EXPECT_GT(net.stats().deliveryRetries, 0u);
}

// ----------------------------------------------------------------
// The verbs host interface.
// ----------------------------------------------------------------

TEST(RdmaNic, SingleMessageLandsZeroCopy)
{
    RdmaStackConfig cfg;
    RdmaStack stack(cfg);
    RdmaRunParams p;
    const RunResult res = runRdmaSingle(stack, p);
    ASSERT_TRUE(res.dataOk);
    // The 1994 overheads are hardware's problem now...
    EXPECT_EQ(res.counts.featureTotal(Feature::BufferMgmt), 0u);
    EXPECT_EQ(res.counts.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(res.counts.featureTotal(Feature::FaultTolerance), 0u);
    // ...but the modern columns are real work.
    EXPECT_GT(res.counts.featureTotal(Feature::CompletionPoll), 0u);
    EXPECT_GT(res.counts.featureTotal(Feature::Registration), 0u);
    EXPECT_GT(res.counts.featureTotal(Feature::BaseCost), 0u);
}

TEST(RdmaNic, AllFourProtocolsRunEventAndSettledMode)
{
    for (const bool eventMode : {false, true}) {
        RdmaStackConfig cfg;
        RdmaStack stack(cfg);
        RdmaRunParams p;
        p.eventMode = eventMode;
        EXPECT_TRUE(runRdmaSingle(stack, p).dataOk);
        EXPECT_TRUE(runRdmaAm4(stack, p).dataOk);
        EXPECT_TRUE(runRdmaFinite(stack, p).dataOk);
        EXPECT_TRUE(runRdmaStream(stack, p).dataOk);
    }
}

TEST(RdmaNic, MrCacheHitsAndMissesAreAccounted)
{
    RdmaStackConfig cfg;
    cfg.mrCacheSlots = 2;
    RdmaStack stack(cfg);
    RdmaNic &nic = stack.nic(0);
    Node &nd = stack.node(0);
    const Addr a = nd.mem().alloc(16);
    const Addr b = nd.mem().alloc(16);
    const Addr c = nd.mem().alloc(16);

    EXPECT_FALSE(nic.regMr(a, 16)); // cold: miss
    EXPECT_TRUE(nic.regMr(a, 16));  // cached: hit
    EXPECT_FALSE(nic.regMr(b, 16));
    EXPECT_FALSE(nic.regMr(c, 16)); // evicts a (FIFO, 2 slots)
    EXPECT_FALSE(nic.regMr(a, 16)); // translation re-fetched
    EXPECT_EQ(nic.mrCacheHits(), 1u);
    EXPECT_EQ(nic.mrCacheMisses(), 4u);
}

TEST(RdmaNic, RegistrationMissCostsMoreThanHit)
{
    RdmaStackConfig cfg;
    RdmaStack stack(cfg);
    RdmaNic &nic = stack.nic(0);
    Node &nd = stack.node(0);
    const Addr buf = nd.mem().alloc(1024);

    InstrCounter before = nd.acct().counter();
    nic.regMr(buf, 1024);
    const auto missCost = nd.acct()
                              .counter()
                              .diff(before)
                              .featureTotal(Feature::Registration);
    before = nd.acct().counter();
    nic.regMr(buf, 1024);
    const auto hitCost = nd.acct()
                             .counter()
                             .diff(before)
                             .featureTotal(Feature::Registration);
    EXPECT_GT(missCost, 4 * hitCost); // pinning + per-page translation
    EXPECT_GT(hitCost, 0u);           // the probe itself is not free
}

TEST(RdmaNic, RnrWithoutPostedRecvThenRecovers)
{
    RdmaStackConfig cfg;
    RdmaStack stack(cfg);
    const Word qp = stack.connectQp(0, 1);
    Node &src = stack.node(0);
    Node &dst = stack.node(1);
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    const Addr sbuf = src.mem().alloc(n);
    const Addr dbuf = dst.mem().alloc(n);
    for (std::uint32_t i = 0; i < n; ++i)
        src.mem().write(sbuf + i, 0x5a00u + i);

    int recvDone = 0;
    stack.nic(1).setCompletionFn(
        [&recvDone](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++recvDone;
        });

    stack.nic(0).regMr(sbuf, n);
    ASSERT_TRUE(stack.nic(0).postSend(qp, sbuf, n, 1));
    // No receive is posted: the NIC NAKs, the fabric retries.
    stack.sim().runUntil(
        [&] { return stack.nic(1).rnrNoRecv() > 0; }, 50'000'000);
    EXPECT_GT(stack.nic(1).rnrNoRecv(), 0u);
    EXPECT_EQ(recvDone, 0);

    stack.nic(1).regMr(dbuf, n);
    stack.nic(1).postRecv(qp, dbuf, n, 7);
    stack.settle();
    stack.nic(1).pollCq();
    EXPECT_EQ(recvDone, 1);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(dst.mem().read(dbuf + i), 0x5a00u + i);
}

TEST(RdmaNic, CqOverflowBackpressuresInsteadOfDropping)
{
    RdmaStackConfig cfg;
    cfg.cqCapacity = 2;
    RdmaStack stack(cfg);
    RdmaRunParams p;
    p.words = 32; // 8 messages of 4 words against a 2-slot CQ
    p.eventMode = true;
    const RunResult res = runRdmaStream(stack, p);
    ASSERT_TRUE(res.dataOk);
    // The sender hit the full send CQ and had to harvest first.
    EXPECT_GT(stack.nic(0).sendStalls(), 0u);
    // Nothing was lost to the pressure.
    EXPECT_EQ(stack.net().stats().dropped, 0u);
}

TEST(RdmaNic, ReceiverCqOverflowStallsTheFabric)
{
    RdmaStackConfig cfg;
    cfg.cqCapacity = 2; // the smallest legal CQ
    RdmaStack stack(cfg);
    const Word qp = stack.connectQp(0, 1);
    Node &src = stack.node(0);
    Node &dst = stack.node(1);
    const auto n = static_cast<std::uint32_t>(stack.dataWords());
    const std::uint32_t messages = 4;
    const Addr sbuf = src.mem().alloc(messages * n);
    const Addr dbuf = dst.mem().alloc(messages * n);
    for (std::uint32_t i = 0; i < messages * n; ++i)
        src.mem().write(sbuf + i, 0xfeed00u + i);

    int recvDone = 0;
    stack.nic(1).setCompletionFn(
        [&recvDone](const RdmaNic::Completion &c) {
            if (c.kind == RdmaNic::Completion::Kind::Recv)
                ++recvDone;
        });

    stack.nic(1).regMr(dbuf, messages * n);
    for (std::uint32_t m = 0; m < messages; ++m)
        stack.nic(1).postRecv(qp, dbuf + m * n, n, m);
    stack.nic(0).regMr(sbuf, messages * n);
    for (std::uint32_t m = 0; m < messages; ++m) {
        while (!stack.nic(0).postSend(qp, sbuf + m * n, n, m))
            stack.nic(0).pollCq(); // tiny send CQ: harvest first
    }

    // With a 2-slot CQ and no polling, the third completion cannot
    // land: the NIC refuses the fragment and the fabric holds it.
    stack.sim().runUntil(
        [&] { return stack.nic(1).cqOverflowStalls() > 0; },
        50'000'000);
    EXPECT_GT(stack.nic(1).cqOverflowStalls(), 0u);

    // Poll-as-you-go drains the backlog without loss.
    while (recvDone < static_cast<int>(messages)) {
        stack.sim().runUntil(
            [&] { return stack.nic(1).cqDepth() > 0; }, 50'000'000);
        if (stack.nic(1).pollCq() == 0)
            break; // would time out; fail below
    }
    stack.settle();
    EXPECT_EQ(recvDone, static_cast<int>(messages));
    for (std::uint32_t i = 0; i < messages * n; ++i)
        EXPECT_EQ(dst.mem().read(dbuf + i), 0xfeed00u + i);
}

// ----------------------------------------------------------------
// Observability must not change what is counted.
// ----------------------------------------------------------------

TEST(RdmaNic, CountsAreBitIdenticalWithTracingOnOrOff)
{
    for (const char *proto : {"single", "am4", "xfer", "stream"}) {
        prof::ProfConfig on;
        on.protocol = proto;
        on.substrate = Substrate::Rdma;
        prof::ProfConfig off = on;
        off.observe = false;
        const auto a = prof::runProfiled(on);
        const auto b = prof::runProfiled(off);
        ASSERT_TRUE(a.result.dataOk) << proto;
        EXPECT_EQ(a.result.counts.paperTotal(),
                  b.result.counts.paperTotal())
            << proto;
        for (int fi = 0; fi < numFeatures; ++fi) {
            const auto f = static_cast<Feature>(fi);
            EXPECT_EQ(a.result.counts.featureTotal(f),
                      b.result.counts.featureTotal(f))
                << proto << "/" << toString(f);
        }
    }
}

} // namespace
} // namespace msgsim

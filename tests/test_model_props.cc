/**
 * @file
 * Property tests of the analytic model itself: monotonicity,
 * linearity, and bounds that must hold over the whole parameter
 * space (not just the points the simulator sweeps).
 */

#include <gtest/gtest.h>

#include "model/analytic.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

TEST(ModelProps, TotalsLinearInMessageSize)
{
    // With n fixed, totals are affine in p: cost(2W) - cost(W) ==
    // cost(3W) - cost(2W).
    for (int n : {4, 8, 32}) {
        ProtoParams a, b, c;
        a.n = b.n = c.n = n;
        a.words = static_cast<std::uint32_t>(n) * 8;
        b.words = a.words * 2;
        c.words = a.words * 3;
        const double d1 = cmamFiniteModel(b).grandTotal() -
                          cmamFiniteModel(a).grandTotal();
        const double d2 = cmamFiniteModel(c).grandTotal() -
                          cmamFiniteModel(b).grandTotal();
        EXPECT_DOUBLE_EQ(d1, d2) << n;
        const double s1 = cmamStreamModel(b).grandTotal() -
                          cmamStreamModel(a).grandTotal();
        const double s2 = cmamStreamModel(c).grandTotal() -
                          cmamStreamModel(b).grandTotal();
        EXPECT_DOUBLE_EQ(s1, s2) << n;
    }
}

TEST(ModelProps, StreamCostMonotoneInOooFraction)
{
    ProtoParams p;
    p.words = 1024;
    double prev = -1;
    for (double f : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        p.oooFraction = f;
        const double total = cmamStreamModel(p).grandTotal();
        EXPECT_GT(total, prev) << f;
        prev = total;
    }
}

TEST(ModelProps, StreamCostMonotoneNonIncreasingInGroupSize)
{
    ProtoParams p;
    p.words = 1024;
    double prev = 1e18;
    for (int g : {1, 2, 4, 8, 16, 64, 256}) {
        p.groupAck = g;
        const double total = cmamStreamModel(p).grandTotal();
        EXPECT_LE(total, prev) << g;
        prev = total;
    }
}

TEST(ModelProps, HlNeverWorseAnywhere)
{
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        ProtoParams p;
        p.n = static_cast<int>(2 * (2 + rng.below(31))); // 4..66
        p.words = static_cast<std::uint32_t>(p.n) *
                  static_cast<std::uint32_t>(1 + rng.below(200));
        p.oooFraction = rng.uniform();
        p.groupAck = static_cast<int>(1 + rng.below(16));
        EXPECT_LE(hlFiniteModel(p).grandTotal(),
                  cmamFiniteModel(p).grandTotal())
            << "n=" << p.n << " w=" << p.words;
        EXPECT_LE(hlStreamModel(p).grandTotal(),
                  cmamStreamModel(p).grandTotal())
            << "n=" << p.n << " w=" << p.words;
    }
}

TEST(ModelProps, HlStreamImprovementIsSizeIndependent)
{
    // §4.1: ~70% reduction "independent of message size" — the ratio
    // converges as p grows and stays in a narrow band.
    ProtoParams p;
    for (std::uint32_t words : {64u, 256u, 4096u, 65536u}) {
        p.words = words;
        const double imp =
            hlImprovement(cmamStreamModel(p), hlStreamModel(p));
        EXPECT_GT(imp, 0.66) << words;
        EXPECT_LT(imp, 0.72) << words;
    }
}

TEST(ModelProps, OverheadFractionBounded)
{
    Rng rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        ProtoParams p;
        p.n = static_cast<int>(2 * (2 + rng.below(63)));
        p.words = static_cast<std::uint32_t>(p.n) *
                  static_cast<std::uint32_t>(1 + rng.below(500));
        p.oooFraction = rng.uniform();
        p.groupAck = static_cast<int>(1 + rng.below(64));
        for (const auto &bd :
             {cmamFiniteModel(p), cmamStreamModel(p),
              hlFiniteModel(p), hlStreamModel(p)}) {
            const double f = bd.overheadFraction();
            EXPECT_GE(f, 0.0);
            EXPECT_LT(f, 1.0);
        }
    }
}

TEST(ModelProps, DmaStrictlyCheaperButHigherOverheadFraction)
{
    Rng rng(99);
    for (int trial = 0; trial < 100; ++trial) {
        ProtoParams pio;
        pio.n = static_cast<int>(2 * (2 + rng.below(31)));
        pio.words = static_cast<std::uint32_t>(pio.n) *
                    static_cast<std::uint32_t>(2 + rng.below(100));
        ProtoParams dma = pio;
        dma.dma = true;
        const auto a = cmamFiniteModel(pio);
        const auto b = cmamFiniteModel(dma);
        EXPECT_LT(b.grandTotal(), a.grandTotal());
        EXPECT_GE(b.overheadFraction(), a.overheadFraction());
    }
}

TEST(ModelProps, SinglePacketIndependentOfHardwarePacketSize)
{
    const double base = singlePacketModel(4).grandTotal();
    for (int n : {8, 16, 64, 128})
        EXPECT_DOUBLE_EQ(singlePacketModel(n).grandTotal(), base);
}

TEST(ModelProps, ValidationRejectsBadParams)
{
    log_detail::throwOnError = true;
    ProtoParams p;
    p.n = 3; // odd
    EXPECT_THROW(cmamFiniteModel(p), log_detail::SimError);
    p.n = 4;
    p.words = 10; // not a multiple
    EXPECT_THROW(cmamStreamModel(p), log_detail::SimError);
    p.words = 16;
    p.oooFraction = 1.5;
    EXPECT_THROW(cmamStreamModel(p), log_detail::SimError);
    log_detail::throwOnError = false;
}

} // namespace
} // namespace msgsim

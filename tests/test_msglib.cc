/**
 * @file
 * Tests of the CMMD/MPI-style tag-matched message-passing library:
 * rendezvous matching, wildcards, unexpected-message queuing, FIFO
 * per (source, tag), and integrity over hostile networks.
 */

#include <gtest/gtest.h>

#include "msglib/msg_passing.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

StackConfig
baseConfig(std::uint32_t nodes = 4)
{
    StackConfig cfg;
    cfg.nodes = nodes;
    return cfg;
}

void
fill(Node &node, Addr buf, std::uint32_t words, std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (std::uint32_t i = 0; i < words; ++i)
        node.mem().write(buf + i, static_cast<Word>(splitMix64(sm)));
}

bool
same(Node &a, Addr abuf, Node &b, Addr bbuf, std::uint32_t words)
{
    for (std::uint32_t i = 0; i < words; ++i)
        if (a.mem().read(abuf + i) != b.mem().read(bbuf + i))
            return false;
    return true;
}

TEST(MsgLib, RecvFirstThenSend)
{
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s = stack.node(0);
    Node &d = stack.node(1);
    const Addr sbuf = s.mem().alloc(16);
    const Addr dbuf = d.mem().alloc(16);
    fill(s, sbuf, 16, 1);

    const auto rh = mp.postRecv(1, dbuf, 16, /*tag=*/7);
    const auto sh = mp.send(0, 1, sbuf, 16, /*tag=*/7);
    ASSERT_TRUE(mp.waitSend(sh));
    ASSERT_TRUE(mp.recvDone(rh));
    EXPECT_EQ(mp.recvWords(rh), 16u);
    EXPECT_EQ(mp.recvSource(rh), 0u);
    EXPECT_TRUE(same(s, sbuf, d, dbuf, 16));
    EXPECT_EQ(mp.unexpectedArrivals(), 0u);
}

TEST(MsgLib, SendFirstParksAsUnexpected)
{
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s = stack.node(0);
    Node &d = stack.node(1);
    const Addr sbuf = s.mem().alloc(8);
    const Addr dbuf = d.mem().alloc(8);
    fill(s, sbuf, 8, 2);

    const auto sh = mp.send(0, 1, sbuf, 8, 42);
    // Let the request arrive with no receive posted.
    mp.progressUntil([&] { return mp.unexpectedArrivals() > 0; });
    EXPECT_EQ(mp.unexpectedArrivals(), 1u);
    EXPECT_FALSE(mp.sendDone(sh));

    const auto rh = mp.postRecv(1, dbuf, 8, 42);
    ASSERT_TRUE(mp.waitSend(sh));
    EXPECT_TRUE(mp.recvDone(rh));
    EXPECT_TRUE(same(s, sbuf, d, dbuf, 8));
}

TEST(MsgLib, TagSelectivity)
{
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s = stack.node(0);
    Node &d = stack.node(1);
    const Addr b1 = s.mem().alloc(4);
    const Addr b2 = s.mem().alloc(4);
    const Addr r1 = d.mem().alloc(4);
    const Addr r2 = d.mem().alloc(4);
    fill(s, b1, 4, 10);
    fill(s, b2, 4, 20);

    // Receives posted for tags 5 then 6; sends arrive 6 then 5.
    const auto rh5 = mp.postRecv(1, r1, 4, 5);
    const auto rh6 = mp.postRecv(1, r2, 4, 6);
    const auto sh6 = mp.send(0, 1, b2, 4, 6);
    ASSERT_TRUE(mp.waitSend(sh6));
    const auto sh5 = mp.send(0, 1, b1, 4, 5);
    ASSERT_TRUE(mp.waitSend(sh5));

    ASSERT_TRUE(mp.recvDone(rh5));
    ASSERT_TRUE(mp.recvDone(rh6));
    EXPECT_TRUE(same(s, b1, d, r1, 4)); // tag 5 landed in r1
    EXPECT_TRUE(same(s, b2, d, r2, 4)); // tag 6 landed in r2
}

TEST(MsgLib, WildcardSourceAndTag)
{
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s = stack.node(2);
    Node &d = stack.node(1);
    const Addr sbuf = s.mem().alloc(4);
    const Addr dbuf = d.mem().alloc(4);
    fill(s, sbuf, 4, 3);

    const auto rh = mp.postRecv(1, dbuf, 4, anyTag, anySource);
    const auto sh = mp.send(2, 1, sbuf, 4, 999);
    ASSERT_TRUE(mp.waitSend(sh));
    ASSERT_TRUE(mp.recvDone(rh));
    EXPECT_EQ(mp.recvSource(rh), 2u);
    EXPECT_TRUE(same(s, sbuf, d, dbuf, 4));
}

TEST(MsgLib, SourceSelectivity)
{
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s0 = stack.node(0);
    Node &s2 = stack.node(2);
    Node &d = stack.node(1);
    const Addr b0 = s0.mem().alloc(4);
    const Addr b2 = s2.mem().alloc(4);
    const Addr r0 = d.mem().alloc(4);
    const Addr r2 = d.mem().alloc(4);
    fill(s0, b0, 4, 100);
    fill(s2, b2, 4, 200);

    const auto rh_from2 = mp.postRecv(1, r2, 4, 1, /*from=*/2);
    const auto rh_from0 = mp.postRecv(1, r0, 4, 1, /*from=*/0);
    const auto sh0 = mp.send(0, 1, b0, 4, 1);
    const auto sh2 = mp.send(2, 1, b2, 4, 1);
    ASSERT_TRUE(mp.waitSend(sh0));
    ASSERT_TRUE(mp.waitSend(sh2));
    ASSERT_TRUE(mp.recvDone(rh_from0));
    ASSERT_TRUE(mp.recvDone(rh_from2));
    EXPECT_TRUE(same(s0, b0, d, r0, 4));
    EXPECT_TRUE(same(s2, b2, d, r2, 4));
}

TEST(MsgLib, FifoPerSourceAndTag)
{
    // Two same-tag messages from one sender must land in post order.
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s = stack.node(0);
    Node &d = stack.node(1);
    const Addr b1 = s.mem().alloc(4);
    const Addr b2 = s.mem().alloc(4);
    const Addr r1 = d.mem().alloc(4);
    const Addr r2 = d.mem().alloc(4);
    fill(s, b1, 4, 7);
    fill(s, b2, 4, 8);

    const auto rhA = mp.postRecv(1, r1, 4, 3);
    const auto rhB = mp.postRecv(1, r2, 4, 3);
    const auto sh1 = mp.send(0, 1, b1, 4, 3);
    ASSERT_TRUE(mp.waitSend(sh1));
    const auto sh2 = mp.send(0, 1, b2, 4, 3);
    ASSERT_TRUE(mp.waitSend(sh2));

    ASSERT_TRUE(mp.recvDone(rhA));
    ASSERT_TRUE(mp.recvDone(rhB));
    EXPECT_TRUE(same(s, b1, d, r1, 4)); // first send -> first post
    EXPECT_TRUE(same(s, b2, d, r2, 4));
}

TEST(MsgLib, ManyPairsConcurrently)
{
    Stack stack(baseConfig(8));
    MsgPassing mp(stack);
    std::vector<MsgPassing::SendHandle> sends;
    std::vector<MsgPassing::RecvHandle> recvs;
    std::vector<std::pair<Addr, Addr>> bufs;

    for (NodeId i = 0; i < 8; ++i) {
        const NodeId peer = (i + 3) % 8;
        Node &s = stack.node(i);
        Node &d = stack.node(peer);
        const Addr sb = s.mem().alloc(32);
        const Addr db = d.mem().alloc(32);
        fill(s, sb, 32, 1000 + i);
        bufs.emplace_back(sb, db);
        recvs.push_back(mp.postRecv(peer, db, 32, i, i));
        sends.push_back(mp.send(i, peer, sb, 32, i));
    }
    ASSERT_TRUE(mp.progressUntil([&] {
        for (auto h : sends)
            if (!mp.sendDone(h))
                return false;
        return true;
    }));
    for (NodeId i = 0; i < 8; ++i) {
        const NodeId peer = (i + 3) % 8;
        EXPECT_TRUE(mp.recvDone(recvs[i])) << i;
        EXPECT_TRUE(same(stack.node(i), bufs[i].first,
                         stack.node(peer), bufs[i].second, 32))
            << i;
    }
}

TEST(MsgLib, WorksOverScrambledNetwork)
{
    StackConfig cfg = baseConfig();
    cfg.order = randomWindowFactory(8, 55);
    Stack stack(cfg);
    MsgPassing mp(stack);
    Node &s = stack.node(0);
    Node &d = stack.node(3);
    const Addr sbuf = s.mem().alloc(128);
    const Addr dbuf = d.mem().alloc(128);
    fill(s, sbuf, 128, 77);

    const auto rh = mp.postRecv(3, dbuf, 128, 9);
    const auto sh = mp.send(0, 3, sbuf, 128, 9);
    ASSERT_TRUE(mp.waitSend(sh));
    ASSERT_TRUE(mp.recvDone(rh));
    EXPECT_TRUE(same(s, sbuf, d, dbuf, 128));
}

TEST(MsgLib, OverflowingMessageIsFatal)
{
    log_detail::throwOnError = true;
    Stack stack(baseConfig());
    MsgPassing mp(stack);
    Node &s = stack.node(0);
    Node &d = stack.node(1);
    const Addr sbuf = s.mem().alloc(16);
    const Addr dbuf = d.mem().alloc(8);
    mp.postRecv(1, dbuf, 8, 1);
    mp.send(0, 1, sbuf, 16, 1);
    EXPECT_THROW(mp.progressUntil([] { return false; }, 4),
                 log_detail::SimError);
    log_detail::throwOnError = false;
}

} // namespace
} // namespace msgsim

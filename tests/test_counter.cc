/**
 * @file
 * Unit tests of the accounting core: InstrCounter, BreakdownCounter,
 * Accounting scopes, and cost models.
 */

#include <gtest/gtest.h>

#include "core/accounting.hh"
#include "core/cost_model.hh"
#include "core/counter.hh"

namespace msgsim
{
namespace
{

TEST(InstrCounter, StartsEmpty)
{
    InstrCounter c;
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(c.paperTotal(), 0u);
    for (int f = 0; f < numFeatures; ++f)
        EXPECT_EQ(c.featureTotal(static_cast<Feature>(f)), 0u);
}

TEST(InstrCounter, AddAndQuery)
{
    InstrCounter c;
    c.add(Feature::BaseCost, OpClass::Reg, 5);
    c.add(Feature::BaseCost, OpClass::MemLoad, 2);
    c.add(Feature::FaultTolerance, OpClass::DevStore, 3);

    EXPECT_EQ(c.get(Feature::BaseCost, OpClass::Reg), 5u);
    EXPECT_EQ(c.featureTotal(Feature::BaseCost), 7u);
    EXPECT_EQ(c.featureTotal(Feature::FaultTolerance), 3u);
    EXPECT_EQ(c.total(), 10u);
    EXPECT_EQ(c.category(Feature::BaseCost, Category::Mem), 2u);
    EXPECT_EQ(c.categoryTotal(Category::Dev), 3u);
}

TEST(InstrCounter, CategoryProjection)
{
    EXPECT_EQ(categoryOf(OpClass::Reg), Category::Reg);
    EXPECT_EQ(categoryOf(OpClass::MemLoad), Category::Mem);
    EXPECT_EQ(categoryOf(OpClass::MemStore), Category::Mem);
    EXPECT_EQ(categoryOf(OpClass::DevLoad), Category::Dev);
    EXPECT_EQ(categoryOf(OpClass::DevStore), Category::Dev);
}

TEST(InstrCounter, PaperTotalExcludesIdle)
{
    InstrCounter c;
    c.add(Feature::BaseCost, OpClass::Reg, 10);
    c.add(Feature::Idle, OpClass::DevLoad, 99);
    EXPECT_EQ(c.paperTotal(), 10u);
    EXPECT_EQ(c.total(), 109u);
}

TEST(InstrCounter, MergeAndDiff)
{
    InstrCounter a, b;
    a.add(Feature::BaseCost, OpClass::Reg, 5);
    b.add(Feature::BaseCost, OpClass::Reg, 3);
    b.add(Feature::BufferMgmt, OpClass::MemStore, 2);

    InstrCounter sum = a + b;
    EXPECT_EQ(sum.get(Feature::BaseCost, OpClass::Reg), 8u);
    EXPECT_EQ(sum.get(Feature::BufferMgmt, OpClass::MemStore), 2u);

    InstrCounter d = sum.diff(a);
    EXPECT_EQ(d, b);
}

TEST(BreakdownCounter, OverheadFraction)
{
    BreakdownCounter bd;
    bd.src.add(Feature::BaseCost, OpClass::Reg, 50);
    bd.dst.add(Feature::BaseCost, OpClass::Reg, 50);
    bd.src.add(Feature::InOrderDelivery, OpClass::Reg, 60);
    bd.dst.add(Feature::FaultTolerance, OpClass::Reg, 40);
    EXPECT_EQ(bd.paperTotal(), 200u);
    EXPECT_DOUBLE_EQ(bd.overheadFraction(), 0.5);
}

TEST(Accounting, ScopesNestAndRestore)
{
    Accounting a;
    EXPECT_EQ(a.feature(), Feature::BaseCost);
    {
        FeatureScope f1(a, Feature::BufferMgmt);
        EXPECT_EQ(a.feature(), Feature::BufferMgmt);
        a.charge(OpClass::Reg, 2);
        {
            FeatureScope f2(a, Feature::FaultTolerance);
            a.charge(OpClass::Reg, 3);
        }
        EXPECT_EQ(a.feature(), Feature::BufferMgmt);
        a.charge(OpClass::Reg, 1);
    }
    EXPECT_EQ(a.feature(), Feature::BaseCost);
    EXPECT_EQ(a.counter().featureTotal(Feature::BufferMgmt), 3u);
    EXPECT_EQ(a.counter().featureTotal(Feature::FaultTolerance), 3u);
}

TEST(Accounting, RowAttribution)
{
    Accounting a;
    {
        RowScope r(a, CostRow::WriteNi);
        a.charge(OpClass::DevStore, 2);
    }
    {
        RowScope r(a, CostRow::CheckStatus);
        a.charge(OpClass::DevLoad, 1);
        a.charge(OpClass::Reg, 4);
    }
    EXPECT_EQ(a.rowTotal(CostRow::WriteNi), 2u);
    EXPECT_EQ(a.rowTotal(CostRow::CheckStatus), 5u);
    EXPECT_EQ(a.rowTotal(CostRow::CallReturn), 0u);
}

TEST(CostModel, UnitAndCm5Weights)
{
    InstrCounter c;
    c.add(Feature::BaseCost, OpClass::Reg, 10);
    c.add(Feature::BaseCost, OpClass::MemLoad, 5);
    c.add(Feature::BaseCost, OpClass::DevStore, 2);

    EXPECT_DOUBLE_EQ(CostModel::unit().cycles(c), 17.0);
    // CM-5 model: dev costs 5 cycles (Appendix A).
    EXPECT_DOUBLE_EQ(CostModel::cm5().cycles(c), 10 + 5 + 2 * 5.0);
}

TEST(CostModel, PerFeatureCycles)
{
    InstrCounter c;
    c.add(Feature::FaultTolerance, OpClass::DevLoad, 4);
    const CostModel m = CostModel::cm5();
    EXPECT_DOUBLE_EQ(m.cycles(c, Feature::FaultTolerance), 20.0);
    EXPECT_DOUBLE_EQ(m.cycles(c, Feature::BaseCost), 0.0);
}

TEST(Strings, EnumNames)
{
    EXPECT_STREQ(toString(Feature::BaseCost), "Base Cost");
    EXPECT_STREQ(toString(Feature::InOrderDelivery), "In-order Del.");
    EXPECT_STREQ(toString(Category::Dev), "dev");
    EXPECT_STREQ(toString(Direction::Source), "Source");
    EXPECT_STREQ(toString(CostRow::CheckStatus), "Check NI status");
    EXPECT_STREQ(toString(OpClass::MemLoad), "mem.load");
}

} // namespace
} // namespace msgsim

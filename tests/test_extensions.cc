/**
 * @file
 * Tests of the paper-motivated extensions: interrupt-driven
 * reception (footnote 2) and DMA bulk-data movement (§5).
 */

#include <gtest/gtest.h>

#include "model/analytic.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

StackConfig
baseConfig()
{
    StackConfig cfg;
    cfg.nodes = 2;
    return cfg;
}

// --- interrupt-driven reception ------------------------------------

TEST(Interrupts, ServiceDrainsLikePoll)
{
    Stack stack(baseConfig());
    int calls = 0;
    const int h = stack.cmam(1).registerHandler(
        [&](NodeId, const std::vector<Word> &) { ++calls; });
    for (Word i = 0; i < 3; ++i)
        stack.cmam(0).am4(1, h, {i});
    stack.settle();
    EXPECT_EQ(stack.cmam(1).interruptService(), 3);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(stack.cmam(1).interruptsTaken(), 1u);
}

TEST(Interrupts, TrapCostChargedPerInterrupt)
{
    Stack stack(baseConfig());
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    stack.cmam(0).am4(1, h, {1});
    stack.settle();

    const InstrCounter before = stack.node(1).acct().counter();
    {
        FeatureScope fs(stack.node(1).acct(), Feature::BaseCost);
        stack.cmam(1).interruptService();
    }
    const auto cost = stack.node(1).acct().counter().diff(before);
    // Poll path costs 27 for one packet (13 entry + 14 packet); the
    // interrupt path replaces the 13-instruction entry with the trap:
    // 96 reg + 2 dev + the drain loop (1 reg + 1 dev empty recheck +
    // per-packet 14 + per-iteration 1+1+2... exact: trap 98 + loop).
    EXPECT_GT(cost.paperTotal(), 100u);
    // Far more than the polled receive.
    EXPECT_GT(cost.paperTotal(), 27u * 3);
}

TEST(Interrupts, StreamEventModeDeliversUnderInterrupts)
{
    StackConfig cfg = baseConfig();
    cfg.maxJitter = 25;
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256;
    p.eventMode = true;
    p.discipline = RecvDiscipline::Interrupt;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(stack.cmam(1).interruptsTaken(), 0u);
}

TEST(Interrupts, CostExceedsPollingDiscipline)
{
    // Footnote 2: "the cost for interrupts is very high for the
    // SPARC processor" — same workload, two disciplines.
    StackConfig cfg = baseConfig();
    cfg.maxJitter = 40; // scattered arrivals: one service per packet
    auto runWith = [&cfg](RecvDiscipline d) {
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 256;
        p.eventMode = true;
        p.discipline = d;
        return proto.run(p);
    };
    const auto polled = runWith(RecvDiscipline::Poll);
    const auto intr = runWith(RecvDiscipline::Interrupt);
    ASSERT_TRUE(polled.dataOk);
    ASSERT_TRUE(intr.dataOk);
    EXPECT_GT(intr.counts.paperTotal(),
              polled.counts.paperTotal() + 1000);
}

TEST(Interrupts, FiniteEventModeDeliversUnderInterrupts)
{
    Stack stack(baseConfig());
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 64;
    p.eventMode = true;
    p.discipline = RecvDiscipline::Interrupt;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
}

// --- DMA ------------------------------------------------------------

TEST(Dma, TransferIntegrity)
{
    StackConfig cfg = baseConfig();
    cfg.dmaXfer = true;
    Stack stack(cfg);
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 256;
    p.dma = true;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(stack.node(0).ni().dmaTransfers(), 0u);
    EXPECT_GT(stack.node(1).ni().dmaTransfers(), 0u);
}

TEST(Dma, MatchesAnalyticModel)
{
    for (int n : {4, 16, 64}) {
        StackConfig cfg = baseConfig();
        cfg.dataWords = n;
        cfg.dmaXfer = true;
        Stack stack(cfg);
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = 1024;
        p.dma = true;
        const auto res = proto.run(p);
        ASSERT_TRUE(res.dataOk);

        ProtoParams pp;
        pp.n = n;
        pp.words = 1024;
        pp.dma = true;
        const auto want = cmamFiniteModel(pp);
        EXPECT_EQ(static_cast<double>(res.counts.src.paperTotal()),
                  want.roleTotal(Direction::Source))
            << "n=" << n;
        EXPECT_EQ(static_cast<double>(res.counts.dst.paperTotal()),
                  want.roleTotal(Direction::Destination))
            << "n=" << n;
    }
}

TEST(Dma, EliminatesPerWordMemAndDevTraffic)
{
    StackConfig pio_cfg = baseConfig();
    Stack pio(pio_cfg);
    FiniteXfer ppio(pio);
    FiniteXferParams params;
    params.words = 1024;
    const auto r_pio = ppio.run(params);

    StackConfig dma_cfg = baseConfig();
    dma_cfg.dmaXfer = true;
    Stack dma(dma_cfg);
    FiniteXfer pdma(dma);
    params.dma = true;
    const auto r_dma = pdma.run(params);

    ASSERT_TRUE(r_pio.dataOk);
    ASSERT_TRUE(r_dma.dataOk);
    // The base cost collapses...
    EXPECT_LT(r_dma.counts.src.featureTotal(Feature::BaseCost),
              r_pio.counts.src.featureTotal(Feature::BaseCost));
    // ...while the messaging-layer overhead stays identical, so the
    // *fraction* rises — the §5 paradox.
    EXPECT_EQ(r_dma.counts.featureTotal(Feature::BufferMgmt),
              r_pio.counts.featureTotal(Feature::BufferMgmt));
    EXPECT_GT(r_dma.counts.overheadFraction(),
              r_pio.counts.overheadFraction());
}

TEST(Dma, EventModeWithRecovery)
{
    StackConfig cfg = baseConfig();
    cfg.dmaXfer = true;
    Stack stack(cfg);
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    net->faults().scriptDrop(4);
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 64;
    p.dma = true;
    p.eventMode = true;
    p.ackTimeout = 2000;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(res.retransmissions, 0u);
}

TEST(Dma, RequiresMatchingStackConfig)
{
    log_detail::throwOnError = true;
    Stack stack(baseConfig()); // no dmaXfer
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.dma = true;
    EXPECT_THROW(proto.run(p), log_detail::SimError);
    log_detail::throwOnError = false;
}

} // namespace
} // namespace msgsim

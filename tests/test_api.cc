/**
 * @file
 * API-surface tests: the umbrella header is self-contained, the
 * reply-AM convenience works, and the high-level layer's unit costs
 * hold in isolation.
 */

#include <gtest/gtest.h>

#include "msgsim/msgsim.hh"

namespace msgsim
{
namespace
{

TEST(Api, UmbrellaHeaderBuildsAWholeStack)
{
    // Everything needed to assemble and exercise the system is
    // reachable through the one include.
    StackConfig cfg;
    cfg.nodes = 2;
    Stack stack(cfg);
    const auto res = runSinglePacket(stack, {});
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.counts.paperTotal(), 47u);
}

TEST(Api, Am4ReplyCostsTheSameButRidesVnet1)
{
    Stack stack(StackConfig{});
    PacketTracer tracer;
    stack.network().setTracer(&tracer);
    int got = 0;
    const int h = stack.cmam(1).registerHandler(
        [&](NodeId, const std::vector<Word> &) { ++got; });

    const InstrCounter before = stack.node(0).acct().counter();
    {
        FeatureScope fs(stack.node(0).acct(), Feature::BaseCost);
        stack.cmam(0).am4Reply(1, h, {5});
    }
    EXPECT_EQ(stack.node(0).acct().counter().diff(before).paperTotal(),
              20u);
    stack.settle();
    stack.cmam(1).poll();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(stack.node(1).ni().hwRecvDepth(1), 0u); // consumed
    // The trace confirms the reply network carried it.
    const auto recs = tracer.select([](const TraceRecord &r) {
        return r.event == TraceEvent::Inject;
    });
    ASSERT_EQ(recs.size(), 1u);
}

TEST(Api, HlLayerUnitCosts)
{
    // HL finite at one packet: src = 3 + 22 = 25; dst = poll entry 13
    // + per-packet 11 reg + 2 mem + 4 dev + completion 5 + buffer
    // bind 13.
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlXferParams p;
    p.words = 4;
    const auto res = runHlFinite(stack, p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.counts.src.paperTotal(), 25u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::BaseCost),
              13u + 17u + 5u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::BufferMgmt), 13u);
}

TEST(Api, HlStreamUnitCosts)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlStreamParams p;
    p.words = 4;
    const auto res = runHlStream(stack, p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.counts.src.paperTotal(), 20u);
    EXPECT_EQ(res.counts.dst.paperTotal(), 27u);
}

TEST(Api, NetFeatureDescriptorsMatchSubstrates)
{
    StackConfig cm5;
    cm5.nodes = 2;
    Stack a(cm5);
    EXPECT_FALSE(a.network().features().inOrderDelivery);
    EXPECT_FALSE(a.network().features().reliableDelivery);
    EXPECT_FALSE(a.network().features().acceptanceIndependent);

    cm5.substrate = Substrate::Cr;
    Stack b(cm5);
    EXPECT_TRUE(b.network().features().inOrderDelivery);
    EXPECT_TRUE(b.network().features().reliableDelivery);
    EXPECT_TRUE(b.network().features().acceptanceIndependent);
}

} // namespace
} // namespace msgsim

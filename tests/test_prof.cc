/**
 * @file
 * Tests of the profiling layer (src/prof): packet lineage recording
 * and flow export, the Chrome-trace schema invariants of a traced
 * run, the latency waterfall, folded cost stacks, the differential
 * table, histogram percentile edge cases, and CLI flag parsing —
 * plus the PR 1 design rule extended to the full profiling kit:
 * instruction counts are bit-identical with it on or off.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/accounting.hh"
#include "core/json.hh"
#include "prof/lineage.hh"
#include "prof/prof_cli.hh"
#include "prof/profile.hh"
#include "prof/profiler.hh"
#include "protocols/finite_xfer.hh"
#include "sim/obs_cli.hh"
#include "sim/stats.hh"
#include "sim/trace_session.hh"

namespace msgsim
{
namespace
{

// ----------------------------------------------------------------
// Lineage recording.
// ----------------------------------------------------------------

TEST(Lineage, StampsEveryPacketAndLinksHandlerChildren)
{
    prof::ProfConfig cfg;
    const auto run = prof::runProfiled(cfg);
    ASSERT_TRUE(run.result.dataOk);
    EXPECT_GT(run.packetsTracked, 0u);
    EXPECT_GT(run.lineageEdges, run.packetsTracked);
}

TEST(Lineage, ParentageFormsTreesRootedAtRequests)
{
    TraceSession ts;
    ts.attach();
    prof::LineageSession lineage;
    {
        StackConfig cfg;
        cfg.nodes = 2;
        Stack stack(cfg);
        ts.bindClock(&stack.sim());
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = 16;
        ASSERT_TRUE(proto.run(p).dataOk);
        ts.bindClock(nullptr);
    }
    ts.detach();

    // Every recorded lineage resolves to a root, and at least one
    // packet (an ack or reply born inside a handler) is a child.
    std::set<std::uint64_t> lineages;
    std::uint64_t children = 0;
    for (const auto &e : lineage.edges())
        if (e.lineage != 0)
            lineages.insert(e.lineage);
    for (const auto id : lineages) {
        const auto root = lineage.rootOf(id);
        EXPECT_NE(root, 0u);
        EXPECT_EQ(lineage.parentOf(root), 0u);
        if (lineage.parentOf(id) != 0)
            ++children;
    }
    EXPECT_GT(lineages.size(), 1u);
    EXPECT_GT(children, 0u);
    EXPECT_EQ(lineage.edgesDropped(), 0u);
}

TEST(Lineage, EdgeRingCapDropsInsteadOfGrowing)
{
    prof::LineageSession::Config cfg;
    cfg.maxEdges = 4;
    prof::LineageSession lineage(cfg);
    {
        StackConfig sc;
        sc.nodes = 2;
        Stack stack(sc);
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = 16;
        ASSERT_TRUE(proto.run(p).dataOk);
    }
    EXPECT_EQ(lineage.edges().size(), 4u);
    EXPECT_GT(lineage.edgesDropped(), 0u);
}

// ----------------------------------------------------------------
// Chrome-trace schema invariants of a traced profiled run.
// ----------------------------------------------------------------

/** Run one profiled protocol under a trace and parse the timeline. */
Json
tracedTimeline(const std::string &protocol)
{
    TraceSession ts;
    ts.attach();
    prof::ProfConfig cfg;
    cfg.protocol = protocol;
    const auto run = prof::runProfiled(cfg);
    ts.detach();
    EXPECT_TRUE(run.result.dataOk);

    Json doc;
    std::string error;
    EXPECT_TRUE(Json::parse(ts.chromeTraceJson(), doc, &error))
        << error;
    return doc;
}

void
checkTimelineInvariants(const Json &doc)
{
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);

    // Flow chains: id -> phases in emission order, with timestamps.
    std::map<std::int64_t, std::vector<std::string>> flowPhases;
    std::map<std::int64_t, std::vector<double>> flowTs;
    std::uint64_t spans = 0;

    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &ev = events->at(i);
        const Json *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        const std::string &phase = ph->asString();
        if (phase == "M")
            continue; // metadata carries no timestamp
        const Json *tsField = ev.find("ts");
        ASSERT_NE(tsField, nullptr);
        EXPECT_GE(tsField->asReal(), 0.0);
        if (phase == "X") {
            // Complete events are the matched begin/end pairs: the
            // exporter only emits them for closed spans, and each
            // carries its duration and owning node track.
            ++spans;
            const Json *dur = ev.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_GE(dur->asReal(), 0.0);
            ASSERT_NE(ev.find("tid"), nullptr);
        } else if (phase == "s" || phase == "t" || phase == "f") {
            const Json *id = ev.find("id");
            ASSERT_NE(id, nullptr);
            flowPhases[id->asInt()].push_back(phase);
            flowTs[id->asInt()].push_back(tsField->asReal());
            if (phase == "f") {
                const Json *bp = ev.find("bp");
                ASSERT_NE(bp, nullptr);
                EXPECT_EQ(bp->asString(), "e");
            }
        }
    }
    EXPECT_GT(spans, 0u);
    ASSERT_FALSE(flowPhases.empty());

    for (const auto &[id, phases] : flowPhases) {
        // Each flow id resolves to a chain: one start, one end,
        // steps in between — at least two points total.
        ASSERT_GE(phases.size(), 2u) << "flow " << id;
        EXPECT_EQ(phases.front(), "s") << "flow " << id;
        EXPECT_EQ(phases.back(), "f") << "flow " << id;
        for (std::size_t i = 1; i + 1 < phases.size(); ++i)
            EXPECT_EQ(phases[i], "t") << "flow " << id;
        // Arrows never point backwards in time.
        const auto &tss = flowTs.at(id);
        for (std::size_t i = 1; i < tss.size(); ++i)
            EXPECT_GE(tss[i], tss[i - 1]) << "flow " << id;
    }
}

TEST(TraceSchema, SinglePacketTimelineIsValid)
{
    checkTimelineInvariants(tracedTimeline("single"));
}

TEST(TraceSchema, FiniteXferTimelineIsValid)
{
    checkTimelineInvariants(tracedTimeline("xfer"));
}

// ----------------------------------------------------------------
// Latency waterfall.
// ----------------------------------------------------------------

TEST(Waterfall, HasFiveSegmentsInPipelineOrder)
{
    prof::ProfConfig cfg;
    const auto run = prof::runProfiled(cfg);
    const auto &wf = run.waterfall;
    ASSERT_EQ(wf.segments.size(), 5u);
    const char *expected[] = {"send_sw", "wire", "queue_wait",
                              "recv_sw", "ack_wait"};
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(wf.segments[i].name, expected[i]);
    EXPECT_GT(wf.lineages, 0u);
    // Every data packet contributes a wire-transit sample.
    EXPECT_EQ(wf.segments[1].samples.size(), run.packetsTracked);

    const std::string text = wf.render();
    for (const char *name : expected)
        EXPECT_NE(text.find(name), std::string::npos) << name;

    const Json j = wf.toJson();
    const Json *segs = j.find("segments");
    ASSERT_NE(segs, nullptr);
    EXPECT_EQ(segs->size(), 5u);
}

// ----------------------------------------------------------------
// Folded cost stacks.
// ----------------------------------------------------------------

TEST(FoldedStacks, LinesAreFlamegraphGrammar)
{
    prof::ProfConfig cfg;
    const auto run = prof::runProfiled(cfg);
    ASSERT_FALSE(run.folded.empty());

    std::istringstream is(run.folded);
    std::string line;
    std::uint64_t lines = 0;
    bool sawBase = false;
    while (std::getline(is, line)) {
        ++lines;
        // "<frame>;<frame>;...;<feature>;<category> <count>"
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string path = line.substr(0, space);
        const std::string count = line.substr(space + 1);
        EXPECT_NE(path.find(';'), std::string::npos) << line;
        EXPECT_EQ(path.rfind("cm5;node", 0), 0u) << line;
        EXPECT_GT(std::stoull(count), 0u) << line;
        if (path.find(";base_cost;") != std::string::npos)
            sawBase = true;
    }
    EXPECT_GT(lines, 4u);
    EXPECT_TRUE(sawBase);
    // The feature names are slugs — never the spaced display names,
    // which would break the "space separates the count" grammar.
    EXPECT_EQ(run.folded.find("Base Cost"), std::string::npos);
}

TEST(FoldedStacks, SelfCostExcludesChildSpans)
{
    // A parent span whose instructions all happen inside a child
    // must fold zero self cost: charge 5 in the child only.
    Accounting acct;
    TraceSession ts;
    prof::CostProfiler profiler("t");
    profiler.bindNode(0, &acct);
    ts.setSpanObserver(&profiler);

    ts.beginSpan(0, "proto", "outer");
    ts.beginSpan(0, "proto", "inner");
    acct.charge(OpClass::Reg, 5);
    ts.endSpan(0);
    ts.endSpan(0);
    ts.setSpanObserver(nullptr);

    const auto &stacks = profiler.stacks();
    const auto inner =
        stacks.find("t;node0;proto/outer;proto/inner");
    const auto outer = stacks.find("t;node0;proto/outer");
    ASSERT_NE(inner, stacks.end());
    EXPECT_EQ(inner->second.total(), 5u);
    if (outer != stacks.end())
        EXPECT_EQ(outer->second.total(), 0u);
    EXPECT_EQ(profiler.unboundSpans(), 0u);
}

// ----------------------------------------------------------------
// The differential table — the paper's vanishing-overhead headline.
// ----------------------------------------------------------------

TEST(Differential, Cm5OverheadVanishesOnCr)
{
    prof::ProfConfig pc;
    pc.observe = false;
    prof::ProfConfig bc = pc;
    bc.substrate = Substrate::Cr;
    const auto primary = prof::runProfiled(pc);
    const auto baseline = prof::runProfiled(bc);
    ASSERT_TRUE(primary.result.dataOk);
    ASSERT_TRUE(baseline.result.dataOk);

    const auto diff = prof::differential(pc, primary, bc, baseline);
    ASSERT_EQ(diff.rows.size(), 4u);
    std::map<std::string, std::string> status;
    for (const auto &row : diff.rows)
        status[prof::featureSlug(row.feature)] = row.status;
    EXPECT_EQ(status.at("base_cost"), "unchanged");
    EXPECT_EQ(status.at("buffer_mgmt"), "vanishes");
    EXPECT_EQ(status.at("in_order"), "vanishes");
    EXPECT_EQ(status.at("fault_tol"), "vanishes");
    EXPECT_LT(diff.baselineTotal, diff.primaryTotal);

    const std::string md = diff.markdown();
    EXPECT_NE(md.find("| feature | cm5/xfer | cr/xfer |"),
              std::string::npos);
    EXPECT_NE(md.find("vanishes"), std::string::npos);

    const Json j = diff.toJson();
    ASSERT_NE(j.find("features"), nullptr);
    EXPECT_EQ(j.find("features")->size(), 4u);
    EXPECT_EQ(j.find("primary")->find("substrate")->asString(),
              "cm5");
}

// ----------------------------------------------------------------
// PR 1 design rule, extended: the full profiling kit (lineage hooks
// + span cost observer + trace session) never perturbs a count.
// ----------------------------------------------------------------

TEST(ProfOverhead, CountsAreBitIdenticalWithProfilingOn)
{
    for (const char *protocol : {"single", "xfer", "stream"}) {
        prof::ProfConfig cfg;
        cfg.protocol = protocol;
        cfg.observe = false;
        const auto off = prof::runProfiled(cfg);
        cfg.observe = true;
        const auto on = prof::runProfiled(cfg);
        // Full-structure equality, every (feature, row, opclass)
        // bucket — same check as the PR 1 tracer regression.
        EXPECT_TRUE(off.result.counts.src == on.result.counts.src)
            << protocol;
        EXPECT_TRUE(off.result.counts.dst == on.result.counts.dst)
            << protocol;
        EXPECT_GT(on.packetsTracked, 0u);
        EXPECT_EQ(off.packetsTracked, 0u);
    }
}

// ----------------------------------------------------------------
// Histogram percentile / render edge cases (satellite coverage).
// ----------------------------------------------------------------

TEST(HistogramEdge, EmptyHistogramRendersAndReportsZero)
{
    Histogram h(0, 10, 8);
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(h.percentile(99), 0.0);
    const std::string art = h.renderAscii();
    EXPECT_EQ(art.front(), '[');
    EXPECT_EQ(art.back(), ']');
    EXPECT_EQ(art.find('@'), std::string::npos);
}

TEST(HistogramEdge, SingleSampleIsEveryPercentile)
{
    Histogram h(0, 10, 10);
    h.sample(4.0);
    // One sample: every percentile lands in its bin ([4, 5)).
    for (const double p : {0.0, 50.0, 99.0, 100.0}) {
        EXPECT_GE(h.percentile(p), 4.0) << p;
        EXPECT_LE(h.percentile(p), 5.0) << p;
    }
    const std::string art = h.renderAscii();
    EXPECT_EQ(std::count(art.begin(), art.end(), '@'), 1);
}

TEST(HistogramEdge, AllEqualSamplesCollapseThePercentiles)
{
    Histogram h(0, 10, 10);
    for (int i = 0; i < 1000; ++i)
        h.sample(7.0);
    EXPECT_EQ(h.percentile(1), h.percentile(99));
    EXPECT_GE(h.percentile(50), 7.0);
    EXPECT_LE(h.percentile(50), 8.0);
}

// ----------------------------------------------------------------
// CLI flag parsing: prof::parseArgs composes with obs::parseArgs.
// ----------------------------------------------------------------

TEST(ProfCli, StripsItsFlagsAndComposesWithObs)
{
    std::vector<std::string> args = {
        "msgsim-prof",          "--trace-out=t.json",
        "--protocol=stream",    "--baseline=cr",
        "--words=128",          "--group-ack=4",
        "--flame-out=f.folded", "leftover",
        "--json-out=r.json"};
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    int argc = static_cast<int>(argv.size());

    const auto obsOpts = obs::parseArgs(argc, argv.data());
    EXPECT_EQ(obsOpts.traceOut, "t.json");

    const auto cli = prof::parseArgs(argc, argv.data());
    EXPECT_EQ(cli.protocol, "stream");
    EXPECT_EQ(cli.baseline, "cr");
    EXPECT_EQ(cli.words, 128u);
    EXPECT_EQ(cli.groupAck, 4);
    EXPECT_EQ(cli.flameOut, "f.folded");
    EXPECT_EQ(cli.jsonOut, "r.json");
    EXPECT_EQ(cli.substrate, "cm5"); // default survives

    // Only the program name and the positional argument remain.
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[0], "msgsim-prof");
    EXPECT_STREQ(argv[1], "leftover");
}

TEST(ProfCli, SubstrateNamesRoundTrip)
{
    Substrate s = Substrate::Cm5;
    EXPECT_TRUE(prof::parseSubstrate("cr", s));
    EXPECT_EQ(s, Substrate::Cr);
    EXPECT_TRUE(prof::parseSubstrate("cm5", s));
    EXPECT_EQ(s, Substrate::Cm5);
    EXPECT_FALSE(prof::parseSubstrate("tcp", s));
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Event-driven execution tests: arrival-hook polling, timers,
 * software retransmission over the detection-only network, window
 * flow control, and the cost of recovery.
 */

#include <gtest/gtest.h>

#include <string>

#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"
#include "sim/metrics.hh"
#include "sim/trace_session.hh"

namespace msgsim
{
namespace
{

StackConfig
cleanConfig()
{
    StackConfig cfg;
    cfg.nodes = 4;
    return cfg;
}

TEST(EventMode, FiniteFaultFreeMatchesCalibrationTotals)
{
    // Without faults or jitter, the event-driven run performs the
    // same protocol work; polls are arrival-coalesced, so the only
    // difference is extra poll entries.  Counts must be >= the
    // calibration totals and data must be intact.
    Stack cal(cleanConfig());
    FiniteXfer pcal(cal);
    FiniteXferParams params;
    params.words = 64;
    const auto base = pcal.run(params);

    Stack evt(cleanConfig());
    FiniteXfer pevt(evt);
    params.eventMode = true;
    const auto res = pevt.run(params);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.retransmissions, 0u);
    EXPECT_GE(res.counts.paperTotal(), base.counts.paperTotal());
    // The protocol work itself is identical; the overhead is bounded
    // by a handful of extra poll entries per phase.
    EXPECT_LT(res.counts.paperTotal(), base.counts.paperTotal() + 400);
}

TEST(EventMode, StreamFaultFreeDelivers)
{
    Stack stack(cleanConfig());
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256;
    p.eventMode = true;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.retransmissions, 0u);
}

TEST(EventMode, StreamRecoversFromScriptedDrop)
{
    // Drop exactly one data packet; the retransmission timer must
    // recover it and the receiver must still deliver in order.
    Stack stack(cleanConfig());
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    net->faults().scriptDrop(3); // the 4th injected packet

    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 64; // 16 packets
    p.eventMode = true;
    p.retxTimeout = 500;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GE(res.retransmissions, 1u);
    // Recovery work was charged to fault tolerance.
    EXPECT_GT(res.counts.src.featureTotal(Feature::FaultTolerance),
              16u * 8u);
}

TEST(EventMode, StreamRecoversFromRandomDrops)
{
    StackConfig cfg = cleanConfig();
    cfg.faults.dropRate = 0.08;
    cfg.faults.seed = 1234;
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 512; // 128 packets
    p.eventMode = true;
    p.retxTimeout = 800;
    p.maxRetx = 256;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(res.retransmissions, 0u);
}

TEST(EventMode, StreamRecoversFromDroppedAcks)
{
    // Acks traverse the same faulty network.  A lost ack causes a
    // retransmission, which the receiver discards as a duplicate and
    // re-acknowledges.
    Stack stack(cleanConfig());
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    // Packet flow: data 0..7 are injections 0..7 interleaved with
    // acks; script drops on a couple of later injections (acks).
    net->faults().scriptDrop(8);
    net->faults().scriptDrop(10);

    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 32; // 8 packets
    p.eventMode = true;
    p.retxTimeout = 400;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(res.duplicates + res.retransmissions, 0u);
}

TEST(EventMode, StreamWithJitterAndFaults)
{
    // The full gauntlet: latency jitter (out-of-order), drops, and
    // corruption (CRC-discarded at the NI), with group acks.
    StackConfig cfg = cleanConfig();
    cfg.maxJitter = 30;
    cfg.faults.dropRate = 0.05;
    cfg.faults.corruptRate = 0.05;
    cfg.faults.seed = 42;
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256;
    p.eventMode = true;
    p.groupAck = 4;
    p.retxTimeout = 1000;
    p.maxRetx = 512;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
}

TEST(EventMode, StreamWindowLimitsInFlight)
{
    Stack stack(cleanConfig());
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256; // 64 packets
    p.eventMode = true;
    p.window = 4;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    // Windowed flow takes longer than firehose: at least 64/4 window
    // round trips.
    EXPECT_GT(res.elapsed, 16u);
}

TEST(EventMode, FiniteRestartsAfterDroppedDataPacket)
{
    Stack stack(cleanConfig());
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    // Injections: 0 = alloc req, 1 = reply, 2.. = data.  Drop one
    // data packet: the ack never comes, the timeout restarts the
    // whole handshake + transfer.
    net->faults().scriptDrop(4);

    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 32;
    p.eventMode = true;
    p.ackTimeout = 2000;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GE(res.retransmissions, 8u); // full resend of 8 packets
}

TEST(EventMode, FiniteRestartsAfterDroppedReply)
{
    Stack stack(cleanConfig());
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    net->faults().scriptDrop(1); // the alloc reply

    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 16;
    p.eventMode = true;
    p.ackTimeout = 2000;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
}

TEST(EventMode, FiniteRestartsAfterDroppedAck)
{
    Stack stack(cleanConfig());
    auto *net = dynamic_cast<Cm5Network *>(&stack.network());
    ASSERT_NE(net, nullptr);
    // 0 req, 1 reply, 2..5 data (16 words), 6 ack.
    net->faults().scriptDrop(6);

    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 16;
    p.eventMode = true;
    p.ackTimeout = 2000;
    const auto res = proto.run(p);
    // The restarted transfer rewrites the same buffer; the duplicate
    // run's stale packets are discarded by the segment epoch check.
    EXPECT_TRUE(res.dataOk);
}

TEST(EventMode, RecoveryCostsAreVisible)
{
    // The headline motivation for hardware fault tolerance: software
    // recovery is expensive.  Compare fault-free and faulty stream
    // runs' fault-tolerance instruction counts.
    StackConfig cfg = cleanConfig();
    Stack clean(cfg);
    StreamProtocol pclean(clean);
    StreamParams params;
    params.words = 256;
    params.eventMode = true;
    params.retxTimeout = 600;
    const auto base = pclean.run(params);
    ASSERT_TRUE(base.dataOk);

    cfg.faults.dropRate = 0.15;
    cfg.faults.seed = 9;
    Stack faulty(cfg);
    StreamProtocol pfaulty(faulty);
    params.maxRetx = 512;
    const auto res = pfaulty.run(params);
    ASSERT_TRUE(res.dataOk);

    const auto ft = [](const RunResult &r) {
        return r.counts.src.featureTotal(Feature::FaultTolerance) +
               r.counts.dst.featureTotal(Feature::FaultTolerance);
    };
    EXPECT_GT(ft(res), ft(base));
}

TEST(EventMode, SimulatorExposesEventLoopMetrics)
{
    Stack stack(cleanConfig());
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256;
    p.eventMode = true;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);

    const Simulator &sim = stack.sim();
    EXPECT_GT(sim.eventsDispatched(), 0u);
    EXPECT_GE(sim.eventsScheduled(), sim.eventsDispatched());
    EXPECT_GT(sim.tickAdvances(), 0u);
    EXPECT_LE(sim.tickAdvances(), sim.eventsDispatched());
    EXPECT_GE(sim.maxQueueDepth(), 1u);

    MetricsRegistry reg;
    sim.publishMetrics(reg, "sim");
    EXPECT_TRUE(reg.has("sim.events_dispatched"));
    EXPECT_TRUE(reg.has("sim.events_scheduled"));
    EXPECT_TRUE(reg.has("sim.tick_advances"));
    EXPECT_TRUE(reg.has("sim.max_queue_depth"));
    EXPECT_EQ(reg.counter("sim.events_dispatched"),
              sim.eventsDispatched());
}

TEST(EventMode, QueueDepthCounterSamplesLandInAnAttachedSession)
{
    TraceSession ts;
    ts.attach();

    Stack stack(cleanConfig());
    ts.bindClock(&stack.sim());
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 64;
    p.eventMode = true;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    ts.detach();

    std::uint64_t depthSamples = 0;
    for (const auto &rec : ts.snapshot())
        if (rec.kind == TraceSession::Kind::Counter &&
            std::string(rec.name) == "sim.queue_depth")
            ++depthSamples;
    EXPECT_GT(depthSamples, 0u);
}

} // namespace
} // namespace msgsim

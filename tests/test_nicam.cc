/**
 * @file
 * Tests of the NIC-offloaded AM substrate (src/nicam): the bounded
 * on-NIC handler table (hit = hardware dispatch, miss = host
 * fallback at full cost), per-handler offload accounting, NIC-side
 * CRC discard, the four protocol drivers, and the design rule that
 * observability never changes counts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "nicam/nicam_network.hh"
#include "nicam/nicam_stack.hh"
#include "prof/profile.hh"
#include "sim/event.hh"

namespace msgsim
{
namespace
{

// ----------------------------------------------------------------
// The on-NIC handler table.
// ----------------------------------------------------------------

TEST(NicamNetwork, OffloadTableIsBounded)
{
    Simulator sim;
    NicamNetwork::Config cfg;
    cfg.nodes = 2;
    cfg.maxOffloadEntries = 2;
    NicamNetwork net(sim, cfg);

    EXPECT_TRUE(net.offloadHandler(1, HwTag::UserAm, 1,
                                   [](const Packet &) {}));
    EXPECT_TRUE(net.offloadHandler(1, HwTag::UserAm, 2,
                                   [](const Packet &) {}));
    // Table full: the third handler stays on the host.
    EXPECT_FALSE(net.offloadHandler(1, HwTag::UserAm, 3,
                                    [](const Packet &) {}));
    // Replacing an existing entry needs no new slot.
    EXPECT_TRUE(net.offloadHandler(1, HwTag::UserAm, 2,
                                   [](const Packet &) {}));
    EXPECT_EQ(net.offloadEntries(1), 2);
    net.removeOffload(1, HwTag::UserAm, 1);
    EXPECT_TRUE(net.offloadHandler(1, HwTag::UserAm, 3,
                                   [](const Packet &) {}));
}

TEST(NicamNetwork, HitsRunOnNicMissesFallToHost)
{
    Simulator sim;
    NicamNetwork::Config cfg;
    cfg.nodes = 2;
    NicamNetwork net(sim, cfg);

    int nicRuns = 0;
    net.offloadHandler(1, HwTag::UserAm, 5,
                       [&nicRuns](const Packet &) { ++nicRuns; });
    std::vector<Word> hostGot;
    net.attach(1, [&](Packet &&p) {
        hostGot.push_back(p.header);
        return true;
    });

    net.inject(Packet(0, 1, HwTag::UserAm, hdr::pack(5, 0),
                      {1, 2, 3, 4}));
    net.inject(Packet(0, 1, HwTag::UserAm, hdr::pack(6, 0),
                      {5, 6, 7, 8}));
    sim.run();

    EXPECT_EQ(nicRuns, 1);
    ASSERT_EQ(hostGot.size(), 1u);
    EXPECT_EQ(hdr::fieldA(hostGot[0]), 5u + 1u);
    EXPECT_EQ(net.offloadHits(), 1u);
    EXPECT_EQ(net.offloadHits(1, HwTag::UserAm, 5), 1u);
    EXPECT_EQ(net.offloadMisses(), 1u);
    EXPECT_EQ(net.stats().delivered, 2u); // both paths count
    const auto f = net.features();
    EXPECT_TRUE(f.offloadDispatch);
    EXPECT_FALSE(f.inOrderDelivery); // still a CM-5-class fabric
    EXPECT_FALSE(f.reliableDelivery);
}

TEST(NicamNetwork, NicCrcCheckDiscardsCorruptPackets)
{
    Simulator sim;
    NicamNetwork::Config cfg;
    cfg.nodes = 2;
    cfg.faults.corruptRate = 1.0;
    NicamNetwork net(sim, cfg);

    int nicRuns = 0;
    net.offloadHandler(1, HwTag::UserAm, 5,
                       [&nicRuns](const Packet &) { ++nicRuns; });
    net.attach(1, [](Packet &&) { return true; });
    net.inject(Packet(0, 1, HwTag::UserAm, hdr::pack(5, 0),
                      {1, 2, 3, 4}));
    sim.run();
    // Detection without correction, same as the NI — but on the NIC.
    EXPECT_EQ(nicRuns, 0);
    EXPECT_EQ(net.offloadCrcDrops(), 1u);
}

// ----------------------------------------------------------------
// The host layer: offloaded protocols.
// ----------------------------------------------------------------

TEST(NicamLayer, SingleAmDispatchesOnNicWithZeroHostDispatch)
{
    NicamStackConfig cfg;
    NicamStack stack(cfg);
    NicamRunParams p;
    const RunResult res = runNicamSingle(stack, p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.dispatchOps, 0u); // the NIC did the dispatch
    EXPECT_GT(stack.net().offloadHits(), 0u);
    EXPECT_EQ(stack.layer(p.dst).hostDispatches(), 0u);
}

TEST(NicamLayer, Am4RoundTripNeverWakesTheDestinationHost)
{
    NicamStackConfig cfg;
    NicamStack stack(cfg);
    NicamRunParams p;
    const RunResult res = runNicamAm4(stack, p);
    ASSERT_TRUE(res.dataOk);
    // Request handled on dst's NIC, reply injected by the NIC: the
    // destination processor executes nothing at all.
    EXPECT_EQ(res.counts.dst.paperTotal(), 0u);
    EXPECT_GT(res.counts.src.paperTotal(), 0u);
    EXPECT_EQ(res.dispatchOps, 0u);
}

TEST(NicamLayer, TableMissFallsBackToFullCostHostDispatch)
{
    NicamStackConfig cfg;
    cfg.maxOffloadEntries = 1;
    NicamStack stack(cfg);
    NicamLayer &dst = stack.layer(1);

    int nicRuns = 0, hostRuns = 0;
    ASSERT_TRUE(dst.installAmHandler(
        1, [&](NodeId, Word, const std::vector<Word> &) {
            ++nicRuns;
        }));
    // Table holds one entry: the second handler stays host-side.
    ASSERT_FALSE(dst.installAmHandler(
        2, [&](NodeId, Word, const std::vector<Word> &) {
            ++hostRuns;
        }));

    stack.layer(0).amSend(1, 1, {10, 11, 12, 13});
    stack.layer(0).amSend(1, 2, {20, 21, 22, 23});
    stack.settle();
    EXPECT_EQ(nicRuns, 1);
    EXPECT_EQ(hostRuns, 0); // sits in the NI until the host polls

    EXPECT_EQ(dst.poll(), 1);
    EXPECT_EQ(hostRuns, 1);
    EXPECT_EQ(dst.hostDispatches(), 1u);
    // The fallback is exactly the software AM dispatch the offload
    // removed — its instruction mirror must be nonzero.
    EXPECT_GT(dst.dispatchOps(), 0u);
    EXPECT_EQ(stack.net().offloadMisses(), 1u);
}

TEST(NicamLayer, FiniteXferPlacedByNicAndProbedByFlag)
{
    NicamStackConfig cfg;
    NicamStack stack(cfg);
    NicamRunParams p;
    p.words = 32;
    const RunResult res = runNicamFinite(stack, p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.packets, 8u);
    EXPECT_EQ(res.dispatchOps, 0u);
    // Receive-side per-packet software is gone; what the host pays is
    // the descriptor post (buffer mgmt) and the completion probe.
    EXPECT_GT(res.counts.featureTotal(Feature::BufferMgmt), 0u);
    EXPECT_EQ(res.counts.featureTotal(Feature::FaultTolerance), 0u);
}

TEST(NicamLayer, StreamIsReorderedOnNicAndHarvestedInOrder)
{
    NicamStackConfig cfg;
    NicamStack stack(cfg);
    NicamRunParams p;
    p.words = 32;
    const RunResult res = runNicamStream(stack, p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.packets, 8u);
    // The source still pays for sequence stamping: the fabric is out
    // of order and ordering metadata is software's job at the source.
    EXPECT_GT(res.counts.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(res.dispatchOps, 0u);
}

TEST(NicamLayer, AllFourProtocolsRunEventMode)
{
    NicamStackConfig cfg;
    NicamStack stack(cfg);
    NicamRunParams p;
    p.eventMode = true;
    EXPECT_TRUE(runNicamSingle(stack, p).dataOk);
    EXPECT_TRUE(runNicamAm4(stack, p).dataOk);
    EXPECT_TRUE(runNicamFinite(stack, p).dataOk);
    EXPECT_TRUE(runNicamStream(stack, p).dataOk);
}

// ----------------------------------------------------------------
// Observability must not change what is counted.
// ----------------------------------------------------------------

TEST(NicamLayer, CountsAreBitIdenticalWithTracingOnOrOff)
{
    for (const char *proto : {"single", "am4", "xfer", "stream"}) {
        prof::ProfConfig on;
        on.protocol = proto;
        on.substrate = Substrate::Nicam;
        prof::ProfConfig off = on;
        off.observe = false;
        const auto a = prof::runProfiled(on);
        const auto b = prof::runProfiled(off);
        ASSERT_TRUE(a.result.dataOk) << proto;
        EXPECT_EQ(a.result.dispatchOps, b.result.dispatchOps)
            << proto;
        EXPECT_EQ(a.result.counts.paperTotal(),
                  b.result.counts.paperTotal())
            << proto;
        for (int fi = 0; fi < numFeatures; ++fi) {
            const auto f = static_cast<Feature>(fi);
            EXPECT_EQ(a.result.counts.featureTotal(f),
                      b.result.counts.featureTotal(f))
                << proto << "/" << toString(f);
        }
    }
}

} // namespace
} // namespace msgsim

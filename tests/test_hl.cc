/**
 * @file
 * Functional tests of the high-level-features layer: no-handshake
 * transfers, hardware-order streams, CR header rejection with
 * hardware retransmission, and hardware fault correction.
 */

#include <gtest/gtest.h>

#include "hlam/hl_stack.hh"

namespace msgsim
{
namespace
{

TEST(HlFinite, IntegrityAcrossSizes)
{
    for (std::uint32_t words : {4u, 16u, 64u, 1024u}) {
        HlStackConfig cfg;
        HlStack stack(cfg);
        HlXferParams p;
        p.words = words;
        const auto res = runHlFinite(stack, p);
        EXPECT_TRUE(res.dataOk) << words;
    }
}

TEST(HlFinite, NoHandshakeNoAckNoOrderingCosts)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlXferParams p;
    p.words = 64;
    const auto res = runHlFinite(stack, p);
    ASSERT_TRUE(res.dataOk);
    // Source: pure base cost — not a single instruction of buffer
    // management, sequencing, or fault tolerance.
    EXPECT_EQ(res.counts.src.featureTotal(Feature::BufferMgmt), 0u);
    EXPECT_EQ(res.counts.src.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(res.counts.src.featureTotal(Feature::FaultTolerance), 0u);
    // Destination: only the 13-instruction buffer-table insert.
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::BufferMgmt), 13u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::FaultTolerance), 0u);
}

TEST(HlFinite, SurvivesHeavyFaultsViaHardwareRetry)
{
    HlStackConfig cfg;
    cfg.faults.dropRate = 0.2;
    cfg.faults.corruptRate = 0.1;
    cfg.faults.seed = 31;
    HlStack stack(cfg);
    HlXferParams p;
    p.words = 256;
    const auto res = runHlFinite(stack, p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(stack.machine().network().stats().hwRetries, 0u);
    // Software never paid for any of it.
    EXPECT_EQ(res.counts.src.featureTotal(Feature::FaultTolerance), 0u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::FaultTolerance), 0u);
}

TEST(HlFinite, HeaderRejectionDefersStalledTransfer)
{
    // Fill the transfer table; the CR network must park the header
    // packet (hardware retransmission) until a slot frees — no
    // deadlock, no software involvement at the source.
    HlStackConfig cfg;
    cfg.maxTransfers = 1;
    cfg.rejectWhenFull = true;
    HlStack stack(cfg);

    Node &src = stack.node(0);
    Node &dst = stack.node(1);
    const Addr sbuf = src.mem().alloc(8);
    const Addr dbuf1 = dst.mem().alloc(8);
    const Addr dbuf2 = dst.mem().alloc(8);
    for (Word i = 0; i < 8; ++i)
        src.mem().write(sbuf + i, 40 + i);

    int done = 0;
    stack.hl(1).postTransfer(51, dbuf1, [&](Word) { ++done; });
    stack.hl(1).postTransfer(52, dbuf2, [&](Word) { ++done; });

    // First transfer occupies the only slot by arriving but not being
    // polled yet; second transfer's header must be rejected.
    stack.hl(0).xferSend(1, 51, sbuf, 8);
    stack.settle();
    stack.hl(1).poll(); // transfer 51 completes, slot frees
    EXPECT_EQ(done, 1);

    stack.hl(0).xferSend(1, 52, sbuf, 8);
    stack.settle();
    stack.hl(1).poll();
    EXPECT_EQ(done, 2);
    for (Word i = 0; i < 8; ++i)
        EXPECT_EQ(dst.mem().read(dbuf2 + i), 40 + i);
}

TEST(HlFinite, ConcurrentHeadersWithRejection)
{
    // Two transfers in flight with a one-slot table: the CR hardware
    // serializes them by rejecting the second header until the first
    // completes.  Event mode drives polls from arrivals.
    HlStackConfig cfg;
    cfg.maxTransfers = 1;
    cfg.rejectWhenFull = true;
    HlStack stack(cfg);

    Node &src = stack.node(0);
    Node &dst = stack.node(1);
    const Addr sbuf = src.mem().alloc(16);
    const Addr dbuf1 = dst.mem().alloc(8);
    const Addr dbuf2 = dst.mem().alloc(8);
    for (Word i = 0; i < 16; ++i)
        src.mem().write(sbuf + i, 80 + i);

    int done = 0;
    stack.hl(1).postTransfer(61, dbuf1, [&](Word) { ++done; });
    stack.hl(1).postTransfer(62, dbuf2, [&](Word) { ++done; });

    // Start transfer 61 and poll only its first packet, so the single
    // table slot is occupied by a transfer in progress.
    stack.hl(0).xferSend(1, 61, sbuf, 8);
    stack.sim().runUntil([&dst] { return dst.ni().hwRecvPending(); },
                         1'000'000);
    stack.hl(1).poll();
    EXPECT_EQ(stack.hl(1).activeTransfers(), 1);

    // Transfer 62's header packet must now be rejected in hardware
    // and parked for retransmission — the source stays oblivious.
    stack.hl(0).xferSend(1, 62, sbuf + 8, 8);
    stack.sim().runUntil(
        [&stack] {
            return stack.machine().network().stats().deliveryRetries >
                   0;
        },
        1'000'000);
    EXPECT_GT(stack.machine().network().stats().deliveryRetries, 0u);
    EXPECT_GT(dst.ni().acceptRefusals(), 0u);

    // Finishing transfer 61 frees the slot; the hardware retry then
    // lands transfer 62 in order.
    stack.hl(1).poll();
    EXPECT_EQ(done, 1);
    stack.settle();
    stack.hl(1).poll();
    EXPECT_EQ(done, 2);
    for (Word i = 0; i < 8; ++i) {
        EXPECT_EQ(dst.mem().read(dbuf1 + i), 80 + i);
        EXPECT_EQ(dst.mem().read(dbuf2 + i), 88 + i);
    }
}

TEST(HlStream, OrderedWithoutAnySoftwareHelp)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlStreamParams p;
    p.words = 256;
    const auto res = runHlStream(stack, p);
    ASSERT_TRUE(res.dataOk); // order verified by content comparison
    EXPECT_EQ(res.counts.src.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::InOrderDelivery), 0u);
    EXPECT_EQ(res.counts.src.featureTotal(Feature::FaultTolerance), 0u);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::FaultTolerance), 0u);
}

TEST(HlStream, OrderedEvenUnderFaults)
{
    HlStackConfig cfg;
    cfg.faults.dropRate = 0.15;
    cfg.faults.corruptRate = 0.1;
    cfg.faults.seed = 77;
    HlStack stack(cfg);
    HlStreamParams p;
    p.words = 512;
    const auto res = runHlStream(stack, p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_GT(stack.machine().network().stats().hwRetries, 0u);
}

TEST(HlStream, EventModeDelivers)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlStreamParams p;
    p.words = 128;
    p.eventMode = true;
    const auto res = runHlStream(stack, p);
    EXPECT_TRUE(res.dataOk);
}

TEST(HlFinite, EventModeDelivers)
{
    HlStackConfig cfg;
    HlStack stack(cfg);
    HlXferParams p;
    p.words = 128;
    p.eventMode = true;
    const auto res = runHlFinite(stack, p);
    EXPECT_TRUE(res.dataOk);
}

TEST(HlFinite, Figure6ImprovementShape)
{
    // Figure 6 left: 10-50% improvement based on message size —
    // large for small messages (handshake dominates), ~10-15% for
    // 1024 words.
    auto cmamTotal = [](std::uint32_t words) {
        const std::uint64_t p = words / 4;
        return (77 + 24 * p) + (140 + 21 * p);
    };
    HlStackConfig cfg;
    HlStack small(cfg), big(cfg);
    HlXferParams ps;
    ps.words = 16;
    const auto rs = runHlFinite(small, ps);
    HlXferParams pb;
    pb.words = 1024;
    const auto rb = runHlFinite(big, pb);

    const double imp_small =
        1.0 - static_cast<double>(rs.counts.paperTotal()) /
                  static_cast<double>(cmamTotal(16));
    const double imp_big =
        1.0 - static_cast<double>(rb.counts.paperTotal()) /
                  static_cast<double>(cmamTotal(1024));
    EXPECT_GT(imp_small, 0.45);
    EXPECT_GT(imp_big, 0.10);
    EXPECT_LT(imp_big, 0.20);
    EXPECT_GT(imp_small, imp_big);
}

} // namespace
} // namespace msgsim

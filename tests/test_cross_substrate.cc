/**
 * @file
 * Layering orthogonality: the CMAM software protocols are substrate
 * -agnostic — run them unchanged on the CR network.  The software
 * still pays its full overhead (it cannot know the hardware already
 * guarantees order and reliability), which is precisely the paper's
 * argument for REDESIGNING the messaging layer (§4) rather than just
 * swapping the network: the savings come from removing software, not
 * from better wires.
 */

#include <gtest/gtest.h>

#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

StackConfig
crConfig()
{
    StackConfig cfg;
    cfg.substrate = Substrate::Cr;
    cfg.nodes = 4;
    return cfg;
}

TEST(CrossSubstrate, CmamFiniteOnCrCostsTheSame)
{
    Stack cr(crConfig());
    FiniteXfer proto(cr);
    FiniteXferParams p;
    p.words = 1024;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    // Identical software, identical bill: 6221 / 5516, even though
    // the hardware underneath would have made most of it redundant.
    EXPECT_EQ(res.counts.src.paperTotal(), 6221u);
    EXPECT_EQ(res.counts.dst.paperTotal(), 5516u);
}

TEST(CrossSubstrate, CmamStreamOnCrPaysSequencingForNothing)
{
    Stack cr(crConfig());
    StreamProtocol proto(cr);
    StreamParams p;
    p.words = 256;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    // In-order hardware means zero out-of-order arrivals...
    EXPECT_EQ(res.oooArrivals, 0u);
    // ...yet the protocol still pays sequence numbers, source
    // buffering, and per-packet acks: f = 0 stream totals.
    const std::uint64_t packets = 64;
    EXPECT_EQ(res.counts.src.paperTotal(), 54u * packets);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::InOrderDelivery),
              6u * packets);
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::FaultTolerance),
              20u * packets);
}

TEST(CrossSubstrate, CmamStreamOnCrUnderHeavyFaults)
{
    // Hardware fault tolerance underneath software fault tolerance:
    // belt and suspenders, zero software retransmissions needed.
    StackConfig cfg = crConfig();
    cfg.faults.dropRate = 0.25;
    cfg.faults.corruptRate = 0.1;
    cfg.faults.seed = 12;
    Stack cr(cfg);
    StreamProtocol proto(cr);
    StreamParams p;
    p.words = 512;
    p.eventMode = true;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.retransmissions, 0u);
    EXPECT_GT(cr.network().stats().hwRetries, 0u);
}

TEST(CrossSubstrate, SavingsComeFromRemovingSoftware)
{
    // The whole point: CMAM-on-CR ≈ CMAM-on-CM5 in software cost;
    // only the §4 redesigned layer banks the hardware services.
    StackConfig cm5;
    cm5.nodes = 2;
    cm5.order = swapAdjacentFactory();
    Stack a(cm5);
    StreamProtocol pa(a);
    StreamParams params;
    params.words = 1024;
    const auto on_cm5 = pa.run(params);

    Stack b(crConfig());
    StreamProtocol pb(b);
    const auto on_cr = pb.run(params);

    ASSERT_TRUE(on_cm5.dataOk);
    ASSERT_TRUE(on_cr.dataOk);
    const double ratio =
        static_cast<double>(on_cr.counts.paperTotal()) /
        static_cast<double>(on_cm5.counts.paperTotal());
    // Only the OOO-buffering term disappears (arrivals are ordered);
    // everything else — 80%+ of the bill — survives the better wires.
    EXPECT_GT(ratio, 0.80);
    EXPECT_LT(ratio, 1.0);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Functional tests of the three protocols (calibration mode):
 * integrity across sizes, repeated and interleaved transfers,
 * scrambled delivery, group acknowledgements.
 */

#include <gtest/gtest.h>

#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

StackConfig
baseConfig()
{
    StackConfig cfg;
    cfg.nodes = 4;
    return cfg;
}

TEST(SinglePacket, WorksBetweenAnyPair)
{
    Stack stack(baseConfig());
    for (NodeId s = 0; s < 4; ++s)
        for (NodeId d = 0; d < 4; ++d) {
            if (s == d)
                continue;
            SinglePacketParams p;
            p.src = s;
            p.dst = d;
            p.payload = {s, d, s + d, s * 16 + d};
            const auto res = runSinglePacket(stack, p);
            EXPECT_TRUE(res.dataOk) << s << "->" << d;
        }
}

class FiniteSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FiniteSizes, IntegrityAcrossSizes)
{
    Stack stack(baseConfig());
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = GetParam();
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.packets, GetParam() / 4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FiniteSizes,
                         ::testing::Values(4u, 8u, 16u, 64u, 256u,
                                           1024u, 4096u));

TEST(Finite, SequentialTransfersReuseSegments)
{
    StackConfig cfg = baseConfig();
    cfg.maxSegments = 2; // far fewer segments than transfers
    Stack stack(cfg);
    FiniteXfer proto(stack);
    for (int i = 0; i < 10; ++i) {
        FiniteXferParams p;
        p.words = 16;
        p.fillSeed = static_cast<std::uint64_t>(i) * 77 + 1;
        const auto res = proto.run(p);
        EXPECT_TRUE(res.dataOk) << "iteration " << i;
    }
    // All segments returned.
    EXPECT_EQ(stack.cmam(1).segments().allocatedCount(), 0);
}

TEST(Finite, DifferentNodePairs)
{
    Stack stack(baseConfig());
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.src = 3;
    p.dst = 2;
    p.words = 64;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
}

TEST(Finite, CostsScaleLinearlyWithPackets)
{
    // totals = 77 + 24p (src), 140 + 21p (dst) at n = 4.
    Stack stack(baseConfig());
    FiniteXfer proto(stack);
    for (std::uint32_t words : {4u, 40u, 400u}) {
        FiniteXferParams p;
        p.words = words;
        const auto res = proto.run(p);
        const std::uint64_t packets = words / 4;
        EXPECT_EQ(res.counts.src.paperTotal(), 77 + 24 * packets);
        EXPECT_EQ(res.counts.dst.paperTotal(), 140 + 21 * packets);
    }
}

TEST(Finite, ScramblingDoesNotChangeCosts)
{
    // The offset-based design makes the finite protocol's cost
    // insensitive to delivery order (no sequencing!).
    StackConfig scrambled = baseConfig();
    scrambled.order = randomWindowFactory(8, 1234);
    Stack s1(baseConfig());
    Stack s2(scrambled);
    FiniteXfer p1(s1), p2(s2);
    FiniteXferParams params;
    params.words = 256;
    const auto r1 = p1.run(params);
    const auto r2 = p2.run(params);
    ASSERT_TRUE(r1.dataOk);
    ASSERT_TRUE(r2.dataOk);
    EXPECT_EQ(r1.counts.src.paperTotal(), r2.counts.src.paperTotal());
    EXPECT_EQ(r1.counts.dst.paperTotal(), r2.counts.dst.paperTotal());
}

// --- Stream ---------------------------------------------------------

TEST(Stream, InOrderDeliveryUnderHeavyScrambling)
{
    StackConfig cfg = baseConfig();
    cfg.order = randomWindowFactory(16, 99);
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 512;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk); // exact content, exact order
    EXPECT_GT(res.oooArrivals, 0u);
}

TEST(Stream, FifoNetworkMeansNoOooCost)
{
    Stack stack(baseConfig()); // FIFO order
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 64;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.oooArrivals, 0u);
    // dst in-order = 6 reg per packet only (16 packets).
    EXPECT_EQ(res.counts.dst.featureTotal(Feature::InOrderDelivery),
              6u * 16u);
}

TEST(Stream, PerPacketAcksCountMatches)
{
    Stack stack(baseConfig());
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 64;
    const auto res = proto.run(p);
    EXPECT_EQ(res.acksSent, 16u);
}

class GroupAckSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GroupAckSweep, CumulativeAcksPreserveIntegrity)
{
    StackConfig cfg = baseConfig();
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256; // 64 packets
    p.groupAck = GetParam();
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    const std::uint64_t g = static_cast<std::uint64_t>(GetParam());
    const std::uint64_t expected_acks = (64 + g - 1) / g;
    EXPECT_EQ(res.acksSent, expected_acks);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupAckSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

TEST(Stream, GroupAcksReduceFaultToleranceCost)
{
    StackConfig cfg = baseConfig();
    cfg.order = swapAdjacentFactory();
    std::uint64_t prev = ~0ull;
    for (int g : {1, 4, 16}) {
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 1024;
        p.groupAck = g;
        const auto res = proto.run(p);
        ASSERT_TRUE(res.dataOk);
        const auto ft =
            res.counts.src.featureTotal(Feature::FaultTolerance) +
            res.counts.dst.featureTotal(Feature::FaultTolerance);
        EXPECT_LT(ft, prev) << "G=" << g;
        prev = ft;
    }
}

TEST(Stream, PaperClaimOverheadSignificantEvenWithGroupAcks)
{
    // §3.2: "the overhead remains significant (~40-50%) even if group
    // acknowledgements are employed."
    StackConfig cfg = baseConfig();
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 1024;
    p.groupAck = 64;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    const double overhead = res.counts.overheadFraction();
    EXPECT_GT(overhead, 0.40);
    EXPECT_LT(overhead, 0.60);
}

TEST(Stream, SeventyPercentOverheadClaim)
{
    // §3.2: in-order + fault tolerance ≈ 70% of end-to-end cost,
    // independent of volume.
    StackConfig cfg = baseConfig();
    cfg.order = swapAdjacentFactory();
    for (std::uint32_t words : {16u, 256u, 1024u}) {
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = words;
        const auto res = proto.run(p);
        ASSERT_TRUE(res.dataOk);
        const double frac =
            static_cast<double>(
                res.counts.featureTotal(Feature::InOrderDelivery) +
                res.counts.featureTotal(Feature::FaultTolerance)) /
            static_cast<double>(res.counts.paperTotal());
        EXPECT_GT(frac, 0.65) << words;
        EXPECT_LT(frac, 0.75) << words;
    }
}

TEST(Stream, BackToBackStreamsOnFreshChannels)
{
    Stack stack(baseConfig());
    StreamProtocol proto(stack);
    for (int i = 0; i < 5; ++i) {
        StreamParams p;
        p.words = 32;
        p.fillSeed = static_cast<std::uint64_t>(i + 1) * 31;
        const auto res = proto.run(p);
        EXPECT_TRUE(res.dataOk) << "stream " << i;
    }
}

TEST(Stream, ReverseDirectionPair)
{
    Stack stack(baseConfig());
    StreamProtocol proto(stack);
    StreamParams p;
    p.src = 2;
    p.dst = 0;
    p.words = 64;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Randomized property tests: seeded sweeps over hostile network
 * configurations, asserting the invariants that must hold for every
 * seed — byte-exact in-order delivery, conservation of packets, and
 * bit-for-bit determinism of repeated runs.
 */

#include <gtest/gtest.h>

#include "hlam/hl_stack.hh"
#include "net/tracer.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"
#include "sim/rng.hh"

namespace msgsim
{
namespace
{

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, StreamSurvivesRandomHostility)
{
    const std::uint64_t seed = GetParam();
    Rng knobs(seed);

    StackConfig cfg;
    cfg.nodes = 2;
    cfg.maxJitter = knobs.below(60);
    cfg.faults.dropRate = knobs.uniform() * 0.12;
    cfg.faults.corruptRate = knobs.uniform() * 0.08;
    cfg.faults.seed = knobs.next();
    cfg.seed = knobs.next();
    Stack stack(cfg);

    StreamProtocol proto(stack);
    StreamParams p;
    p.words = static_cast<std::uint32_t>(4 * (8 + knobs.below(120)));
    p.eventMode = true;
    p.groupAck = static_cast<int>(1 + knobs.below(8));
    p.window = static_cast<std::uint32_t>(knobs.below(3) == 0
                                              ? 0
                                              : 4 + knobs.below(12));
    p.retxTimeout = 600 + knobs.below(1200);
    p.maxRetx = 4096;
    p.fillSeed = knobs.next();

    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk) << "seed=" << seed
                            << " words=" << p.words
                            << " G=" << p.groupAck
                            << " W=" << p.window;
}

TEST_P(SeedSweep, FiniteSurvivesRandomDropsViaRestart)
{
    const std::uint64_t seed = GetParam();
    Rng knobs(seed ^ 0xabcdefULL);

    StackConfig cfg;
    cfg.nodes = 2;
    cfg.faults.dropRate = knobs.uniform() * 0.03;
    cfg.faults.seed = knobs.next();
    Stack stack(cfg);

    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = static_cast<std::uint32_t>(4 * (4 + knobs.below(40)));
    p.eventMode = true;
    p.ackTimeout = 3000;
    p.maxRestarts = 64;
    p.fillSeed = knobs.next();

    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk) << "seed=" << seed << " words=" << p.words;
}

TEST_P(SeedSweep, PacketConservationAlwaysHolds)
{
    const std::uint64_t seed = GetParam();
    Rng knobs(seed ^ 0x777ULL);

    StackConfig cfg;
    cfg.nodes = 2;
    cfg.maxJitter = knobs.below(40);
    cfg.faults.dropRate = knobs.uniform() * 0.1;
    cfg.faults.seed = knobs.next();
    Stack stack(cfg);
    PacketTracer tracer;
    stack.network().setTracer(&tracer);

    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 256;
    p.eventMode = true;
    p.retxTimeout = 700;
    p.maxRetx = 2048;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk) << seed;
    EXPECT_EQ(tracer.observed(TraceEvent::Inject),
              tracer.observed(TraceEvent::Deliver) +
                  tracer.observed(TraceEvent::Drop))
        << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull,
                                           8ull, 13ull, 21ull, 34ull,
                                           55ull, 89ull));

TEST(Determinism, IdenticalSeedsIdenticalRuns)
{
    auto run = [] {
        StackConfig cfg;
        cfg.nodes = 2;
        cfg.maxJitter = 30;
        cfg.faults.dropRate = 0.06;
        cfg.faults.seed = 99;
        cfg.seed = 7;
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 256;
        p.eventMode = true;
        p.retxTimeout = 700;
        p.maxRetx = 1024;
        return proto.run(p);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_TRUE(a.dataOk);
    EXPECT_TRUE(a.counts.src == b.counts.src);
    EXPECT_TRUE(a.counts.dst == b.counts.dst);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.oooArrivals, b.oooArrivals);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    auto run = [](std::uint64_t seed) {
        StackConfig cfg;
        cfg.nodes = 2;
        cfg.maxJitter = 50;
        cfg.seed = seed;
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 512;
        p.eventMode = true;
        return proto.run(p);
    };
    const auto a = run(1);
    const auto b = run(2);
    ASSERT_TRUE(a.dataOk);
    ASSERT_TRUE(b.dataOk);
    // Different jitter draws: the reordering profile should differ.
    EXPECT_NE(a.oooArrivals, b.oooArrivals);
}

TEST(Determinism, HlRunsAreDeterministicUnderFaults)
{
    auto run = [] {
        HlStackConfig cfg;
        cfg.faults.dropRate = 0.2;
        cfg.faults.corruptRate = 0.1;
        cfg.faults.seed = 5;
        HlStack stack(cfg);
        HlStreamParams p;
        p.words = 256;
        return runHlStream(stack, p);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_TRUE(a.dataOk);
    EXPECT_TRUE(a.counts.src == b.counts.src);
    EXPECT_EQ(a.elapsed, b.elapsed);
}

} // namespace
} // namespace msgsim

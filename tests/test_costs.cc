/**
 * @file
 * Granular cost tests: each messaging-layer building block measured
 * in isolation against its DESIGN.md §2.1 constant, by differencing
 * runs that differ by exactly one unit of work.
 */

#include <gtest/gtest.h>

#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

StackConfig
twoNodes()
{
    StackConfig cfg;
    cfg.nodes = 2;
    return cfg;
}

/** Instruction cost of node @p id during @p fn. */
template <typename Fn>
InstrCounter
measure(Stack &stack, NodeId id, Fn &&fn)
{
    const InstrCounter before = stack.node(id).acct().counter();
    fn();
    return stack.node(id).acct().counter().diff(before);
}

TEST(UnitCosts, SendIs14Reg1Mem5Dev)
{
    Stack stack(twoNodes());
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    const auto cost = measure(stack, 0, [&] {
        FeatureScope fs(stack.node(0).acct(), Feature::BaseCost);
        stack.cmam(0).am4(1, h, {1, 2, 3, 4});
    });
    EXPECT_EQ(cost.categoryTotal(Category::Reg), 14u);
    EXPECT_EQ(cost.categoryTotal(Category::Mem), 1u);
    EXPECT_EQ(cost.categoryTotal(Category::Dev), 5u);
}

TEST(UnitCosts, EmptyPollIsPollEntryOnly)
{
    // A poll that finds nothing: entry linkage + one failed status
    // check = 12 reg + 1 dev + the final branch... exactly 13 + the
    // entry's callRet accounted inside (total 13 + 3 = 16?  No:
    // entry fixed = callRet 3 + first check 9 reg + 1 dev = 13).
    Stack stack(twoNodes());
    const auto cost = measure(stack, 1, [&] {
        FeatureScope fs(stack.node(1).acct(), Feature::BaseCost);
        EXPECT_EQ(stack.cmam(1).poll(), 0);
    });
    EXPECT_EQ(cost.paperTotal(), 13u);
    EXPECT_EQ(cost.categoryTotal(Category::Dev), 1u);
}

TEST(UnitCosts, PerPacketReceiveIs14)
{
    // Receive cost difference between draining 1 and 2 packets must
    // be the per-packet 10 reg + 4 dev.
    auto recvCost = [](int packets) {
        Stack stack(twoNodes());
        const int h = stack.cmam(1).registerHandler(
            [](NodeId, const std::vector<Word> &) {});
        for (int i = 0; i < packets; ++i)
            stack.cmam(0).am4(1, h, {Word(i)});
        stack.settle();
        const auto cost = measure(stack, 1, [&] {
            FeatureScope fs(stack.node(1).acct(), Feature::BaseCost);
            stack.cmam(1).poll();
        });
        return cost;
    };
    const auto one = recvCost(1);
    const auto two = recvCost(2);
    EXPECT_EQ(two.paperTotal() - one.paperTotal(), 14u);
    EXPECT_EQ(two.categoryTotal(Category::Dev) -
                  one.categoryTotal(Category::Dev),
              4u);
    EXPECT_EQ(one.paperTotal(), 27u); // the Table 1 destination
}

TEST(UnitCosts, XferPerPacketIs22And18)
{
    // One extra data packet costs the source 15+h+h+3 = 24 (n = 4,
    // plus 2 in-order) ... measured as the run-total delta: 24 src,
    // 21 dst (incl. 3 in-order).
    auto total = [](std::uint32_t words) {
        Stack stack(twoNodes());
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = words;
        const auto res = proto.run(p);
        EXPECT_TRUE(res.dataOk);
        return std::make_pair(res.counts.src.paperTotal(),
                              res.counts.dst.paperTotal());
    };
    const auto [s1, d1] = total(16);
    const auto [s2, d2] = total(20); // one more packet
    EXPECT_EQ(s2 - s1, 24u); // 22 base + 2 in-order
    EXPECT_EQ(d2 - d1, 21u); // 18 base + 3 in-order
}

TEST(UnitCosts, StreamPerPacketIs54And63)
{
    // The paper's per-packet stream cost: 54 at the source and 63 at
    // the destination (with half OOO, amortized over a pair).
    auto total = [](std::uint32_t words) {
        StackConfig cfg = twoNodes();
        cfg.order = swapAdjacentFactory();
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = words;
        const auto res = proto.run(p);
        EXPECT_TRUE(res.dataOk);
        return std::make_pair(res.counts.src.paperTotal(),
                              res.counts.dst.paperTotal());
    };
    const auto [s1, d1] = total(16);  // 4 packets
    const auto [s2, d2] = total(24);  // 6 packets: one more OOO pair
    EXPECT_EQ((s2 - s1) / 2, 54u);
    EXPECT_EQ((d2 - d1) / 2, 63u);
}

TEST(UnitCosts, SegmentRoundTripIs54And21)
{
    // alloc (25 reg + 8 mem) + free (18 reg + 3 mem).
    Stack stack(twoNodes());
    SegmentTable &segs = stack.cmam(0).segments();
    Node &n = stack.node(0);
    const auto cost = measure(stack, 0, [&] {
        const Word id = segs.alloc(n.proc(), 0x10, 1);
        segs.free(n.proc(), id);
    });
    EXPECT_EQ(cost.categoryTotal(Category::Reg), 43u);
    EXPECT_EQ(cost.categoryTotal(Category::Mem), 11u);
    EXPECT_EQ(cost.categoryTotal(Category::Dev), 0u);
}

TEST(UnitCosts, InterruptTrapIs96Reg2Dev)
{
    Stack stack(twoNodes());
    const auto cost = measure(stack, 1, [&] {
        FeatureScope fs(stack.node(1).acct(), Feature::BaseCost);
        EXPECT_EQ(stack.cmam(1).interruptService(), 0);
    });
    // Trap (96 reg + 2 dev) + empty drain check (1 reg + 1 dev +
    // 2 branch... first=false: 1 reg status test; loop exits before
    // control-flow charge).
    EXPECT_EQ(cost.categoryTotal(Category::Dev), 3u);
    EXPECT_EQ(cost.paperTotal(), 96u + 2u + 1u + 1u);
}

TEST(UnitCosts, ControlPacketsStayFourWordsAtBigN)
{
    // At n = 32, a control/AM packet still costs 20 to send (the
    // 4-word CMAM_4 format), while a bulk stream packet costs
    // 14 + 1 + (16 + 3) = 34.
    StackConfig cfg = twoNodes();
    cfg.dataWords = 32;
    Stack stack(cfg);
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    const auto am = measure(stack, 0, [&] {
        FeatureScope fs(stack.node(0).acct(), Feature::BaseCost);
        stack.cmam(0).am4(1, h, {1});
    });
    EXPECT_EQ(am.paperTotal(), 20u);

    const auto bulk = measure(stack, 0, [&] {
        FeatureScope fs(stack.node(0).acct(), Feature::BaseCost);
        stack.cmam(0).sendTagged(HwTag::StreamData, 1, 0,
                                 std::vector<Word>(32, 7), 0);
    });
    EXPECT_EQ(bulk.paperTotal(), 34u);
}

TEST(UnitCosts, RowsSumToCategoryTotals)
{
    // Cross-axis consistency: Table-1 rows and categories count the
    // same stream of operations.
    Stack stack(twoNodes());
    const auto res = runSinglePacket(stack, {});
    std::uint64_t row_sum = 0;
    for (const auto v : res.srcRows)
        row_sum += v;
    EXPECT_EQ(row_sum, res.counts.src.paperTotal());
    row_sum = 0;
    for (const auto v : res.dstRows)
        row_sum += v;
    EXPECT_EQ(row_sum, res.counts.dst.paperTotal());
}

} // namespace
} // namespace msgsim

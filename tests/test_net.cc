/**
 * @file
 * Unit tests of the network common layer: packet format and CRC,
 * header packing, fat-tree topology, fault injection, and
 * delivery-order policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/fault.hh"
#include "net/order.hh"
#include "net/packet.hh"
#include "net/topology.hh"

namespace msgsim
{
namespace
{

TEST(Packet, CrcDetectsCorruption)
{
    Packet p(0, 1, HwTag::UserAm, 0x1234, {1, 2, 3, 4});
    p.seal();
    EXPECT_TRUE(p.checksumOk());
    p.data[2] ^= 0x100;
    EXPECT_FALSE(p.checksumOk());
    p.data[2] ^= 0x100;
    EXPECT_TRUE(p.checksumOk());
    p.header ^= 1;
    EXPECT_FALSE(p.checksumOk());
}

TEST(Packet, CorruptedFlagFailsChecksum)
{
    Packet p(0, 1, HwTag::UserAm, 7, {9, 9});
    p.seal();
    p.corrupted = true;
    EXPECT_FALSE(p.checksumOk());
}

TEST(Packet, SizeIsHeaderPlusData)
{
    Packet p(0, 1, HwTag::XferData, 0, {1, 2, 3, 4});
    EXPECT_EQ(p.sizeWords(), 5u); // the CM-5's five-word packet
}

TEST(HeaderPacking, RoundTrips)
{
    const Word h = hdr::pack(0xab, 0x123456);
    EXPECT_EQ(hdr::fieldA(h), 0xabu);
    EXPECT_EQ(hdr::fieldB(h), 0x123456u);
    EXPECT_EQ(hdr::pack(hdr::maxFieldA, hdr::maxFieldB), 0xffffffffu);
}

TEST(FatTree, SingleSwitchCluster)
{
    FatTree t(4, 4);
    EXPECT_EQ(t.levels(), 1u);
    EXPECT_EQ(t.lca(0, 0), 0u);
    EXPECT_EQ(t.lca(0, 3), 1u);
    EXPECT_EQ(t.hops(0, 3), 2u);
    EXPECT_EQ(t.pathCount(0, 3), 1u);
}

TEST(FatTree, TwoLevels)
{
    FatTree t(16, 4);
    EXPECT_EQ(t.levels(), 2u);
    EXPECT_EQ(t.lca(0, 1), 1u);   // same leaf switch
    EXPECT_EQ(t.lca(0, 4), 2u);   // across leaf switches
    EXPECT_EQ(t.hops(0, 4), 4u);
    EXPECT_EQ(t.pathCount(0, 4), 4u); // 4 root choices
    EXPECT_EQ(t.pathCount(0, 1), 1u);
}

TEST(FatTree, ThreeLevels)
{
    FatTree t(64, 4);
    EXPECT_EQ(t.levels(), 3u);
    EXPECT_EQ(t.lca(0, 63), 3u);
    EXPECT_EQ(t.hops(0, 63), 6u);
    EXPECT_EQ(t.pathCount(0, 63), 16u);
}

TEST(FatTree, NonPowerNodeCounts)
{
    FatTree t(10, 2);
    EXPECT_EQ(t.levels(), 4u); // 2^4 = 16 >= 10
    EXPECT_EQ(t.lca(0, 9), 4u);
}

TEST(FaultInjector, CleanByDefault)
{
    FaultInjector fi;
    Packet p(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4});
    p.seal();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fi.apply(p), FaultAction::None);
    EXPECT_EQ(fi.drops(), 0u);
    EXPECT_EQ(fi.corruptions(), 0u);
}

TEST(FaultInjector, RatesRoughlyCalibrated)
{
    FaultInjector::Config cfg;
    cfg.dropRate = 0.1;
    cfg.corruptRate = 0.05;
    FaultInjector fi(cfg);
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        Packet p(0, 1, HwTag::UserAm, 0, {1, 2});
        p.injectSeq = static_cast<std::uint64_t>(i);
        p.seal();
        fi.apply(p);
    }
    EXPECT_NEAR(static_cast<double>(fi.drops()) / trials, 0.10, 0.01);
    EXPECT_NEAR(static_cast<double>(fi.corruptions()) / trials, 0.045,
                0.012);
}

TEST(FaultInjector, ScriptedFaultsFireOnce)
{
    FaultInjector fi;
    fi.scriptDrop(5);
    fi.scriptCorrupt(7);
    for (std::uint64_t i = 0; i < 10; ++i) {
        Packet p(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4});
        p.injectSeq = i;
        p.seal();
        const auto action = fi.apply(p);
        if (i == 5) {
            EXPECT_EQ(action, FaultAction::Drop);
        } else if (i == 7) {
            EXPECT_EQ(action, FaultAction::Corrupt);
            EXPECT_FALSE(p.checksumOk());
        } else {
            EXPECT_EQ(action, FaultAction::None);
        }
    }
    // Scripts are one-shot.
    Packet q(0, 1, HwTag::UserAm, 0, {1});
    q.injectSeq = 5;
    q.seal();
    EXPECT_EQ(fi.apply(q), FaultAction::None);
}

TEST(FaultInjector, ScriptedDuplicateFiresOnceAndLeavesPacketIntact)
{
    FaultInjector fi;
    fi.scriptDuplicate(3);
    for (std::uint64_t i = 0; i < 6; ++i) {
        Packet p(0, 1, HwTag::UserAm, 0, {9, 8, 7, 6});
        p.injectSeq = i;
        p.seal();
        const auto action = fi.apply(p);
        if (i == 3) {
            EXPECT_EQ(action, FaultAction::Duplicate);
            // The duplicate is a ghost copy, not a corruption: the
            // original payload must still checksum clean.
            EXPECT_TRUE(p.checksumOk());
        } else {
            EXPECT_EQ(action, FaultAction::None);
        }
    }
    EXPECT_EQ(fi.duplications(), 1u);
    EXPECT_EQ(fi.drops(), 0u);
    EXPECT_EQ(fi.corruptions(), 0u);

    // One-shot, like the other scripts.
    Packet q(0, 1, HwTag::UserAm, 0, {1});
    q.injectSeq = 3;
    q.seal();
    EXPECT_EQ(fi.apply(q), FaultAction::None);
}

TEST(FaultInjector, DuplicateRateRoughlyCalibrated)
{
    FaultInjector::Config cfg;
    cfg.duplicateRate = 0.08;
    FaultInjector fi(cfg);
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        Packet p(0, 1, HwTag::UserAm, 0, {1, 2});
        p.injectSeq = static_cast<std::uint64_t>(i);
        p.seal();
        fi.apply(p);
    }
    EXPECT_NEAR(static_cast<double>(fi.duplications()) / trials, 0.08,
                0.01);
    EXPECT_EQ(fi.drops(), 0u);
    EXPECT_EQ(fi.corruptions(), 0u);
}

TEST(FaultInjector, DropScriptOutranksDuplicateScript)
{
    // Precedence on the same packet: scripted drop wins; the
    // duplicate script is NOT consumed and fires on a later packet.
    FaultInjector fi;
    fi.scriptDrop(2);
    fi.scriptDuplicate(2);
    Packet p(0, 1, HwTag::UserAm, 0, {1, 2});
    p.injectSeq = 2;
    p.seal();
    EXPECT_EQ(fi.apply(p), FaultAction::Drop);
    EXPECT_EQ(fi.duplications(), 0u);

    Packet q(0, 1, HwTag::UserAm, 0, {1, 2});
    q.injectSeq = 2;
    q.seal();
    EXPECT_EQ(fi.apply(q), FaultAction::Duplicate);
}

// --- Order policies -----------------------------------------------

std::vector<Packet>
makeFlow(std::uint64_t count)
{
    std::vector<Packet> flow;
    for (std::uint64_t i = 0; i < count; ++i) {
        Packet p(0, 1, HwTag::StreamData, 0, {Word(i), 0});
        p.flowIndex = i;
        flow.push_back(p);
    }
    return flow;
}

std::vector<std::uint64_t>
runPolicy(OrderPolicy &policy, std::uint64_t count)
{
    std::vector<std::uint64_t> out;
    for (auto &p : makeFlow(count)) {
        std::vector<Packet> rel;
        policy.arrive(std::move(p), rel);
        for (const auto &r : rel)
            out.push_back(r.flowIndex);
    }
    std::vector<Packet> rel;
    policy.flush(rel);
    for (const auto &r : rel)
        out.push_back(r.flowIndex);
    return out;
}

/** Count packets arriving before some earlier-injected packet. */
std::uint64_t
countOoo(const std::vector<std::uint64_t> &order)
{
    std::uint64_t ooo = 0;
    std::uint64_t expected = 0;
    std::set<std::uint64_t> early;
    for (auto idx : order) {
        if (idx == expected) {
            ++expected;
            while (early.count(expected)) {
                early.erase(expected);
                ++expected;
            }
        } else {
            early.insert(idx);
            ++ooo;
        }
    }
    return ooo;
}

TEST(OrderPolicy, FifoPreservesOrder)
{
    FifoOrder p;
    const auto order = runPolicy(p, 10);
    for (std::uint64_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(OrderPolicy, SwapAdjacentIsExactlyHalfOoo)
{
    SwapAdjacentOrder p;
    const auto order = runPolicy(p, 8);
    EXPECT_EQ(order,
              (std::vector<std::uint64_t>{1, 0, 3, 2, 5, 4, 7, 6}));
    EXPECT_EQ(countOoo(order), 4u);
}

TEST(OrderPolicy, SwapAdjacentFlushesOddTail)
{
    SwapAdjacentOrder p;
    const auto order = runPolicy(p, 5);
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order.back(), 4u); // held packet released at flush
}

TEST(OrderPolicy, PairSwapChanceZeroIsFifo)
{
    PairSwapChanceOrder p(0.0, 42);
    const auto order = runPolicy(p, 16);
    for (std::uint64_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(OrderPolicy, PairSwapChanceOneIsSwapAdjacent)
{
    PairSwapChanceOrder p(1.0, 42);
    const auto order = runPolicy(p, 8);
    EXPECT_EQ(order,
              (std::vector<std::uint64_t>{1, 0, 3, 2, 5, 4, 7, 6}));
}

TEST(OrderPolicy, RandomWindowDeliversEverything)
{
    RandomWindowOrder p(4, 99);
    const auto order = runPolicy(p, 19);
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), 19u);
    for (std::uint64_t i = 0; i < 19; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(OrderPolicy, FactoriesProduceIndependentFlows)
{
    auto factory = pairSwapChanceFactory(0.5, 1234);
    auto p1 = factory();
    auto p2 = factory();
    // Different flow seeds: same input, plausibly different output —
    // at minimum both must deliver all packets.
    const auto o1 = runPolicy(*p1, 32);
    const auto o2 = runPolicy(*p2, 32);
    EXPECT_EQ(o1.size(), 32u);
    EXPECT_EQ(o2.size(), 32u);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Host self-profiler tests (PR 6): the non-negotiables first —
 * simulation results are bit-identical with the profiler attached or
 * not, and a HostScope with no profiler attached performs zero heap
 * allocations — then the reporting surface (calling-context tree
 * self-cost arithmetic, shares summing to 100%, the folded-stack
 * grammar, metrics publication), allocation attribution, thread-local
 * isolation, the perf_event_open probe's graceful fallback, and the
 * bench-trajectory migration/replacement rules.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "hostprof/hostprof.hh"
#include "hostprof/hw_counters.hh"
#include "lab/reporter.hh"
#include "lab/result_table.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"
#include "sim/metrics.hh"

namespace msgsim
{
namespace
{

using hostprof::HostProfiler;
using hostprof::HostScope;
using hostprof::Site;

StackConfig
baseConfig()
{
    StackConfig cfg;
    cfg.nodes = 4;
    return cfg;
}

RunResult
runXfer(Word words)
{
    Stack stack(baseConfig());
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = words;
    return proto.run(p);
}

/** Everything a RunResult reports, as one comparable tuple. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_TRUE(a.counts.src == b.counts.src);
    EXPECT_TRUE(a.counts.dst == b.counts.dst);
    EXPECT_EQ(a.dataOk, b.dataOk);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.oooArrivals, b.oooArrivals);
    EXPECT_EQ(a.acksSent, b.acksSent);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.duplicates, b.duplicates);
}

// ------------------------------------------------------------------
// The two invariants everything else depends on.
// ------------------------------------------------------------------

TEST(HostProf, SimulationIsBitIdenticalProfilerOnOrOff)
{
    const RunResult off1 = runXfer(64);

    HostProfiler hp;
    hp.attach();
    const RunResult on = runXfer(64);
    hp.detach();

    const RunResult off2 = runXfer(64);

    expectIdentical(off1, on);
    expectIdentical(off1, off2);

    // And the profiler actually saw the run it rode along on.
    EXPECT_GT(hp.totalEnters(), 0u);
    EXPECT_EQ(hp.totalEnters(), hp.totalExits());
}

TEST(HostProf, DisabledScopesAllocateNothing)
{
    ASSERT_EQ(HostProfiler::current(), nullptr);
    // Warm up any lazy TLS/runtime allocation before measuring.
    {
        HostScope warm(Site::SimStep);
    }
    const std::uint64_t before = hostprof::globalAllocCount();
    for (int i = 0; i < 1000; ++i) {
        HostScope a(Site::SimStep);
        HostScope b(Site::SimHandler);
        HostScope c(Site::CmamPoll);
    }
    EXPECT_EQ(hostprof::globalAllocCount(), before);
}

// ------------------------------------------------------------------
// Calling-context-tree arithmetic.
// ------------------------------------------------------------------

TEST(HostProf, NestedSelfCostExcludesChildren)
{
    HostProfiler hp;
    hp.attach();
    {
        HostScope outer(Site::SimStep);
        {
            HostScope inner1(Site::SimHeapPop);
        }
        {
            HostScope inner2(Site::SimHandler);
        }
    }
    hp.detach();

    ASSERT_TRUE(hp.balanced());
    const auto rows = hp.rows();
    ASSERT_EQ(rows.size(), 3u);

    // Top-level scopes sit at depth 1 (the implicit root is depth 0).
    const HostProfiler::Row *outer = nullptr;
    std::uint64_t childTotal = 0;
    for (const auto &r : rows) {
        if (r.depth == 1) {
            outer = &r;
        } else {
            EXPECT_EQ(r.depth, 2);
            EXPECT_EQ(r.selfCycles, r.totalCycles); // leaves
            childTotal += r.totalCycles;
        }
    }
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->site, Site::SimStep);
    EXPECT_EQ(outer->selfCycles, outer->totalCycles - childTotal);

    // Self costs telescope: they sum exactly to the root total.
    std::uint64_t selfSum = 0;
    for (const auto &r : rows)
        selfSum += r.selfCycles;
    EXPECT_EQ(selfSum, hp.rootCycles());
}

TEST(HostProf, SubsystemSharesSumToOneHundredPercent)
{
    HostProfiler hp;
    hp.attach();
    const RunResult r = runXfer(32);
    hp.detach();
    ASSERT_TRUE(r.dataOk);
    ASSERT_TRUE(hp.balanced());

    double shareSum = 0.0;
    std::uint64_t selfSum = 0;
    int active = 0;
    for (const auto &sub : hp.subsystems()) {
        shareSum += sub.share;
        selfSum += sub.selfCycles;
        if (sub.enters > 0)
            ++active;
    }
    EXPECT_EQ(selfSum, hp.rootCycles());
    EXPECT_NEAR(shareSum, 1.0, 1e-9);
    // An xfer run exercises the whole stack: sim, net, a substrate,
    // ni, cmam, hl and proto should all be live.
    EXPECT_GE(active, 6);
}

TEST(HostProf, FoldedStacksFollowTheGrammar)
{
    HostProfiler hp;
    hp.attach();
    (void)runXfer(16);
    hp.detach();

    const std::string folded = hp.foldedStacks("host");
    ASSERT_FALSE(folded.empty());
    ASSERT_EQ(folded.back(), '\n');

    std::istringstream lines(folded);
    std::string line;
    std::uint64_t countSum = 0;
    while (std::getline(lines, line)) {
        // Exactly one space, separating the frame path from the count.
        const auto space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        ASSERT_EQ(line.find(' ', space + 1), std::string::npos) << line;

        const std::string path = line.substr(0, space);
        const std::string count = line.substr(space + 1);
        EXPECT_EQ(path.rfind("host;", 0), 0u) << line;
        ASSERT_FALSE(path.empty());
        EXPECT_NE(path.front(), ';');
        EXPECT_NE(path.back(), ';');
        EXPECT_EQ(path.find(";;"), std::string::npos) << line;

        ASSERT_FALSE(count.empty()) << line;
        for (char c : count)
            ASSERT_TRUE(c >= '0' && c <= '9') << line;
        countSum += std::stoull(count);
    }
    // Folded counts are self cycles, so they also telescope.
    EXPECT_EQ(countSum, hp.rootCycles());
}

// ------------------------------------------------------------------
// Allocation attribution.
// ------------------------------------------------------------------

TEST(HostProf, AllocationsAttributeToTheInnermostScope)
{
    HostProfiler hp;
    hp.attach();
    {
        HostScope outer(Site::CmamSend);
        {
            HostScope inner(Site::NiSend);
            auto p = std::make_unique<char[]>(4096);
            // Keep the allocation alive across the scope close so the
            // optimizer cannot elide it.
            EXPECT_NE(p.get(), nullptr);
        }
    }
    hp.detach();

    EXPECT_GE(hp.scopedAllocs(), 1u);
    EXPECT_GE(hp.scopedAllocBytes(), 4096u);
    bool attributed = false;
    for (const auto &r : hp.rows())
        if (r.site == Site::NiSend && r.allocs >= 1 &&
            r.allocBytes >= 4096)
            attributed = true;
    EXPECT_TRUE(attributed);
}

TEST(HostProf, UnscopedAllocationsAreCountedSeparately)
{
    HostProfiler hp;
    hp.attach();
    auto p = std::make_unique<char[]>(512);
    EXPECT_NE(p.get(), nullptr);
    hp.detach();

    EXPECT_GE(hp.unscopedAllocs(), 1u);
    EXPECT_GE(hp.unscopedAllocBytes(), 512u);
}

TEST(HostProf, GlobalAllocCountersAreAlwaysMaintained)
{
    const std::uint64_t count0 = hostprof::globalAllocCount();
    const std::uint64_t bytes0 = hostprof::globalAllocBytes();
    auto p = std::make_unique<char[]>(2048);
    EXPECT_NE(p.get(), nullptr);
    EXPECT_GT(hostprof::globalAllocCount(), count0);
    EXPECT_GE(hostprof::globalAllocBytes(), bytes0 + 2048);
}

// ------------------------------------------------------------------
// Thread-local attachment.
// ------------------------------------------------------------------

TEST(HostProf, AttachmentIsThreadLocal)
{
    HostProfiler hp;
    hp.attach();
    ASSERT_EQ(HostProfiler::current(), &hp);

    std::atomic<bool> otherSawProfiler{true};
    std::thread other([&] {
        otherSawProfiler = HostProfiler::current() != nullptr;
        // Scopes on an unattached thread must be inert.
        HostScope s(Site::SimStep);
    });
    other.join();
    EXPECT_FALSE(otherSawProfiler);
    EXPECT_EQ(hp.totalEnters(), 0u);

    hp.detach();
    EXPECT_EQ(HostProfiler::current(), nullptr);
}

// ------------------------------------------------------------------
// Reporting surfaces.
// ------------------------------------------------------------------

TEST(HostProf, PublishMetricsEmitsPerSubsystemCells)
{
    HostProfiler hp;
    hp.attach();
    (void)runXfer(16);
    hp.detach();

    MetricsRegistry reg;
    hp.publishMetrics(reg, "hostprof");
    EXPECT_TRUE(reg.has("hostprof.scope_enters"));
    EXPECT_TRUE(reg.has("hostprof.scope_exits"));
    EXPECT_TRUE(reg.has("hostprof.root_cycles"));
    EXPECT_TRUE(
        reg.has("hostprof.enters", {{"subsystem", "sim"}}));
    EXPECT_TRUE(
        reg.has("hostprof.self_cycles", {{"subsystem", "cmam"}}));
    EXPECT_TRUE(reg.has("hostprof.share", {{"subsystem", "proto"}}));
    EXPECT_EQ(reg.counter("hostprof.scope_enters"),
              hp.totalEnters());
}

TEST(HostProf, JsonReportHasTheAdvertisedShape)
{
    HostProfiler hp;
    hp.attach();
    (void)runXfer(16);
    hp.detach();

    const Json doc = hp.toJson();
    ASSERT_NE(doc.find("scopes"), nullptr);
    ASSERT_NE(doc.find("alloc"), nullptr);
    ASSERT_NE(doc.find("subsystems"), nullptr);
    ASSERT_NE(doc.find("rows"), nullptr);
    const Json *subs = doc.find("subsystems");
    EXPECT_EQ(subs->size(),
              static_cast<std::size_t>(hostprof::numSubsystems));
}

// ------------------------------------------------------------------
// perf_event_open fallback.
// ------------------------------------------------------------------

TEST(HostProf, HwCountersNeverCrash)
{
    std::string reason;
    const bool available = hostprof::HwCounters::probe(&reason);
    EXPECT_FALSE(reason.empty());

    hostprof::HwCounters hw;
    const bool started = hw.start();
    // start() must agree with probe() about this environment.
    EXPECT_EQ(started, available);
    const auto sample = hw.sample();
    if (!started) {
        EXPECT_FALSE(sample.ok);
        EXPECT_FALSE(hw.reason().empty());
    } else {
        hw.stop();
        EXPECT_TRUE(hw.sample().ok);
        EXPECT_GT(hw.sample().instructions, 0u);
    }

    MetricsRegistry reg;
    hostprof::publishHwAvailability(reg, "hostprof");
    ASSERT_TRUE(reg.has("hostprof.counters_available"));
    EXPECT_EQ(reg.gauge("hostprof.counters_available"),
              available ? 1.0 : 0.0);
}

// ------------------------------------------------------------------
// Bench trajectory (satellite 1).
// ------------------------------------------------------------------

class BenchTrajectory : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("msgsim_bench_test_" +
                 std::to_string(::getpid()) + ".json");
        std::filesystem::remove(path_);
    }

    void TearDown() override { std::filesystem::remove(path_); }

    static lab::ResultTable
    table(const char *name, std::int64_t value)
    {
        lab::ResultTable t;
        t.name = name;
        t.title = "test table";
        t.columns = {"value"};
        t.addRow({lab::Cell::integer(
            static_cast<std::uint64_t>(value))});
        return t;
    }

    Json
    readDoc() const
    {
        std::ifstream in(path_);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        Json doc;
        std::string error;
        EXPECT_TRUE(Json::parse(text, doc, &error)) << error;
        return doc;
    }

    std::filesystem::path path_;
};

TEST_F(BenchTrajectory, AppendsAndPreservesEntries)
{
    lab::Reporter::appendBench(path_.string(), table("P1", 1), "p1");
    lab::Reporter::appendBench(path_.string(), table("H1-wall", 2),
                               "selfprof");

    const Json doc = readDoc();
    const Json *bench = doc.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->asString(), "msgsim perf trajectory");
    const Json *entries = doc.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->size(), 2u);
    EXPECT_EQ(entries->at(0).find("label")->asString(), "p1");
    EXPECT_EQ(entries->at(1).find("label")->asString(), "selfprof");
}

TEST_F(BenchTrajectory, ReplacesMatchingEntryInPlace)
{
    lab::Reporter::appendBench(path_.string(), table("P1", 1), "p1");
    lab::Reporter::appendBench(path_.string(), table("H1-wall", 2),
                               "selfprof");
    lab::Reporter::appendBench(path_.string(), table("P1", 3), "p1");

    const Json doc = readDoc();
    const Json *entries = doc.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->size(), 2u); // replaced, not appended
    const Json &first = entries->at(0);
    EXPECT_EQ(first.find("label")->asString(), "p1");
    const Json *rows = first.find("rows");
    ASSERT_NE(rows, nullptr);
    EXPECT_EQ(rows->at(0).at(0).asInt(), 3);
}

TEST_F(BenchTrajectory, MigratesPreTrajectorySnapshot)
{
    // The PR 5 format: one bare ResultTable document.
    lab::Reporter::writeFile(path_.string(),
                             table("P1", 7).jsonText());
    lab::Reporter::appendBench(path_.string(), table("P1", 8), "p1");

    const Json doc = readDoc();
    const Json *entries = doc.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->size(), 2u);
    EXPECT_EQ(entries->at(0).find("label")->asString(),
              "pre-trajectory snapshot");
    EXPECT_EQ(entries->at(0).find("rows")->at(0).at(0).asInt(), 7);
    EXPECT_EQ(entries->at(1).find("label")->asString(), "p1");
}

// ------------------------------------------------------------------
// A second protocol driver, to pin the proto.* site split.
// ------------------------------------------------------------------

TEST(HostProf, StreamRunsAttributeToTheStreamSite)
{
    HostProfiler hp;
    hp.attach();
    {
        Stack stack(baseConfig());
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 32;
        const RunResult r = proto.run(p);
        EXPECT_TRUE(r.dataOk);
    }
    hp.detach();

    bool sawStream = false, sawXfer = false;
    for (const auto &r : hp.rows()) {
        if (r.site == Site::ProtoStream)
            sawStream = true;
        if (r.site == Site::ProtoXfer)
            sawXfer = true;
    }
    EXPECT_TRUE(sawStream);
    EXPECT_FALSE(sawXfer);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Property tests: the analytic model of src/model (the paper's
 * Figure 8 generalization) must agree cell-for-cell with measured
 * simulator counts across sweeps of packet size, message size,
 * out-of-order fraction, and ack group size.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hlam/hl_stack.hh"
#include "model/analytic.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

/** Compare one role of a measured breakdown against the model. */
void
expectRoleMatches(const InstrCounter &got, const FeatureBreakdown &want,
                  Direction dir, const std::string &label)
{
    for (int f = 0; f < numPaperFeatures; ++f) {
        const auto feat = static_cast<Feature>(f);
        const CatCost &w = want.at(feat, dir);
        EXPECT_EQ(static_cast<double>(got.category(feat, Category::Reg)),
                  w.reg)
            << label << " " << toString(feat) << " reg "
            << toString(dir);
        EXPECT_EQ(static_cast<double>(got.category(feat, Category::Mem)),
                  w.mem)
            << label << " " << toString(feat) << " mem "
            << toString(dir);
        EXPECT_EQ(static_cast<double>(got.category(feat, Category::Dev)),
                  w.dev)
            << label << " " << toString(feat) << " dev "
            << toString(dir);
    }
}

struct SweepPoint
{
    int n;
    std::uint32_t words;
};

class ModelSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(ModelSweep, SinglePacket)
{
    const auto [n, words] = GetParam();
    (void)words;
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.dataWords = n;
    Stack stack(cfg);
    const auto res = runSinglePacket(stack, {});
    ASSERT_TRUE(res.dataOk);
    const auto want = singlePacketModel(n);
    expectRoleMatches(res.counts.src, want, Direction::Source, "sp");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "sp");
}

TEST_P(ModelSweep, CmamFinite)
{
    const auto [n, words] = GetParam();
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.dataWords = n;
    Stack stack(cfg);
    FiniteXfer proto(stack);
    FiniteXferParams fp;
    fp.words = words;
    const auto res = proto.run(fp);
    ASSERT_TRUE(res.dataOk);

    ProtoParams pp;
    pp.n = n;
    pp.words = words;
    const auto want = cmamFiniteModel(pp);
    expectRoleMatches(res.counts.src, want, Direction::Source, "fin");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "fin");
}

TEST_P(ModelSweep, CmamStreamHalfOoo)
{
    const auto [n, words] = GetParam();
    if (words / static_cast<std::uint32_t>(n) % 2 != 0)
        GTEST_SKIP() << "odd packet count: f != 1/2 exactly";
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.dataWords = n;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams sp;
    sp.words = words;
    const auto res = proto.run(sp);
    ASSERT_TRUE(res.dataOk);

    ProtoParams pp;
    pp.n = n;
    pp.words = words;
    pp.oooFraction = 0.5;
    const auto want = cmamStreamModel(pp);
    expectRoleMatches(res.counts.src, want, Direction::Source, "str");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "str");
}

TEST_P(ModelSweep, CmamStreamFifo)
{
    const auto [n, words] = GetParam();
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.dataWords = n;
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams sp;
    sp.words = words;
    const auto res = proto.run(sp);
    ASSERT_TRUE(res.dataOk);

    ProtoParams pp;
    pp.n = n;
    pp.words = words;
    pp.oooFraction = 0.0;
    const auto want = cmamStreamModel(pp);
    expectRoleMatches(res.counts.src, want, Direction::Source, "strF");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "strF");
}

TEST_P(ModelSweep, HlFinite)
{
    const auto [n, words] = GetParam();
    HlStackConfig cfg;
    cfg.nodes = 2;
    cfg.dataWords = n;
    HlStack stack(cfg);
    HlXferParams hp;
    hp.words = words;
    const auto res = runHlFinite(stack, hp);
    ASSERT_TRUE(res.dataOk);

    ProtoParams pp;
    pp.n = n;
    pp.words = words;
    const auto want = hlFiniteModel(pp);
    expectRoleMatches(res.counts.src, want, Direction::Source, "hlf");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "hlf");
}

TEST_P(ModelSweep, HlStream)
{
    const auto [n, words] = GetParam();
    HlStackConfig cfg;
    cfg.nodes = 2;
    cfg.dataWords = n;
    HlStack stack(cfg);
    HlStreamParams hp;
    hp.words = words;
    const auto res = runHlStream(stack, hp);
    ASSERT_TRUE(res.dataOk);

    ProtoParams pp;
    pp.n = n;
    pp.words = words;
    const auto want = hlStreamModel(pp);
    expectRoleMatches(res.counts.src, want, Direction::Source, "hls");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "hls");
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelSweep,
    ::testing::Values(SweepPoint{4, 16}, SweepPoint{4, 64},
                      SweepPoint{4, 1024}, SweepPoint{8, 32},
                      SweepPoint{8, 512}, SweepPoint{16, 64},
                      SweepPoint{16, 1024}, SweepPoint{32, 128},
                      SweepPoint{64, 1024}, SweepPoint{128, 1024}));

struct GroupPoint
{
    std::uint32_t words;
    int g;
};

class GroupModelSweep : public ::testing::TestWithParam<GroupPoint>
{
};

TEST_P(GroupModelSweep, CmamStreamGroupAcks)
{
    const auto [words, g] = GetParam();
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams sp;
    sp.words = words;
    sp.groupAck = g;
    const auto res = proto.run(sp);
    ASSERT_TRUE(res.dataOk);

    ProtoParams pp;
    pp.words = words;
    pp.oooFraction = 0.5;
    pp.groupAck = g;
    const auto want = cmamStreamModel(pp);
    expectRoleMatches(res.counts.src, want, Direction::Source, "grp");
    expectRoleMatches(res.counts.dst, want, Direction::Destination,
                      "grp");
}

INSTANTIATE_TEST_SUITE_P(Grid, GroupModelSweep,
                         ::testing::Values(GroupPoint{64, 2},
                                           GroupPoint{64, 4},
                                           GroupPoint{256, 8},
                                           GroupPoint{1024, 16},
                                           GroupPoint{1024, 7}));

// --- Model self-checks against the paper's headline numbers --------

TEST(Model, PaperTotalsAtN4)
{
    ProtoParams p16;
    p16.words = 16;
    ProtoParams p1024;
    p1024.words = 1024;

    EXPECT_DOUBLE_EQ(cmamFiniteModel(p16).grandTotal(), 397.0);
    EXPECT_DOUBLE_EQ(cmamFiniteModel(p1024).grandTotal(), 11737.0);
    EXPECT_DOUBLE_EQ(cmamStreamModel(p16).grandTotal(), 481.0);
    EXPECT_DOUBLE_EQ(cmamStreamModel(p1024).grandTotal(), 29965.0);
    EXPECT_DOUBLE_EQ(singlePacketModel(4).grandTotal(), 47.0);
}

TEST(Model, OverheadFractions)
{
    // Abstract: 50-70% of software messaging cost is overhead.
    ProtoParams p;
    p.words = 1024;
    EXPECT_NEAR(cmamStreamModel(p).overheadFraction(), 0.709, 0.01);
    ProtoParams p16;
    p16.words = 16;
    EXPECT_GT(cmamFiniteModel(p16).overheadFraction(), 0.5);
    // Large finite transfers are the one exception (§3.3): ~12%.
    EXPECT_NEAR(cmamFiniteModel(p).overheadFraction(), 0.126, 0.01);
}

TEST(Model, Figure8FiniteOverheadDeclinesWithPacketSize)
{
    double prev = 1.0;
    for (int n : {4, 8, 16, 32, 64, 128}) {
        ProtoParams p;
        p.n = n;
        p.words = 1024;
        const double frac = cmamFiniteModel(p).overheadFraction();
        EXPECT_LT(frac, prev) << n;
        prev = frac;
    }
    // §5: "9-11% of the total cost" for finite at larger packets —
    // our generalization lands 6.5-13% across 4..128 with the same
    // shape.
    ProtoParams p;
    p.n = 128;
    p.words = 1024;
    EXPECT_GT(cmamFiniteModel(p).overheadFraction(), 0.05);
    EXPECT_LT(cmamFiniteModel(p).overheadFraction(), 0.13);
}

TEST(Model, Figure8StreamOverheadStaysSignificant)
{
    // §5: "messaging overhead for indefinite-sequence multi-packet
    // delivery remains significant over the range of packet sizes."
    for (int n : {4, 8, 16, 32, 64, 128}) {
        ProtoParams p;
        p.n = n;
        p.words = 1024;
        EXPECT_GT(cmamStreamModel(p).overheadFraction(), 0.5) << n;
    }
}

TEST(Model, WeightedCyclesAmplifyDevCosts)
{
    ProtoParams p;
    p.words = 16;
    const auto bd = cmamFiniteModel(p);
    const double unit = bd.weightedTotal(CostModel::unit());
    const double cm5 = bd.weightedTotal(CostModel::cm5());
    EXPECT_DOUBLE_EQ(unit, bd.grandTotal());
    EXPECT_GT(cm5, unit);
}

TEST(Model, ImprovementHelper)
{
    ProtoParams p;
    p.words = 1024;
    const double imp =
        hlImprovement(cmamStreamModel(p), hlStreamModel(p));
    EXPECT_NEAR(imp, 0.70, 0.02);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the CMAM layer itself: active-message dispatch, poll
 * semantics, control sinks, the segment table, and the xfer send
 * path, independent of whole-protocol drivers.
 */

#include <gtest/gtest.h>

#include "protocols/stack.hh"
#include "sim/log.hh"

namespace msgsim
{
namespace
{

StackConfig
twoNodes()
{
    StackConfig cfg;
    cfg.nodes = 2;
    return cfg;
}

struct ThrowOnError
{
    ThrowOnError() { log_detail::throwOnError = true; }
    ~ThrowOnError() { log_detail::throwOnError = false; }
};

TEST(Cmam, Am4DeliversArgsToHandler)
{
    Stack stack(twoNodes());
    NodeId from = 99;
    std::vector<Word> got;
    const int h = stack.cmam(1).registerHandler(
        [&](NodeId src, const std::vector<Word> &args) {
            from = src;
            got = args;
        });
    stack.cmam(0).am4(1, h, {11, 22, 33, 44});
    stack.settle();
    stack.cmam(1).poll();
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(got, (std::vector<Word>{11, 22, 33, 44}));
}

TEST(Cmam, ShortPayloadZeroPadded)
{
    Stack stack(twoNodes());
    std::vector<Word> got;
    const int h = stack.cmam(1).registerHandler(
        [&](NodeId, const std::vector<Word> &args) { got = args; });
    stack.cmam(0).am4(1, h, {7});
    stack.settle();
    stack.cmam(1).poll();
    EXPECT_EQ(got, (std::vector<Word>{7, 0, 0, 0}));
}

TEST(Cmam, PollDrainsMultiplePackets)
{
    Stack stack(twoNodes());
    int calls = 0;
    const int h = stack.cmam(1).registerHandler(
        [&](NodeId, const std::vector<Word> &) { ++calls; });
    for (Word i = 0; i < 5; ++i)
        stack.cmam(0).am4(1, h, {i});
    stack.settle();
    EXPECT_EQ(stack.cmam(1).poll(), 5);
    EXPECT_EQ(calls, 5);
    EXPECT_EQ(stack.cmam(1).poll(), 0); // nothing left
}

TEST(Cmam, HandlersDispatchByIndex)
{
    Stack stack(twoNodes());
    int which = -1;
    const int h0 = stack.cmam(1).registerHandler(
        [&](NodeId, const std::vector<Word> &) { which = 0; });
    const int h1 = stack.cmam(1).registerHandler(
        [&](NodeId, const std::vector<Word> &) { which = 1; });
    ASSERT_NE(h0, h1);
    stack.cmam(0).am4(1, h1, {});
    stack.settle();
    stack.cmam(1).poll();
    EXPECT_EQ(which, 1);
}

TEST(Cmam, ControlSinkReceivesHeaderArgAndPayload)
{
    Stack stack(twoNodes());
    Word hdr_arg = 0;
    std::vector<Word> payload;
    stack.cmam(1).setControlSink(
        CtrlOp::GenericA,
        [&](NodeId, Word arg, const std::vector<Word> &args) {
            hdr_arg = arg;
            payload = args;
        });
    stack.cmam(0).sendControl(1, CtrlOp::GenericA, 0x1234, {5, 6});
    stack.settle();
    stack.cmam(1).poll();
    EXPECT_EQ(hdr_arg, 0x1234u);
    EXPECT_EQ(payload, (std::vector<Word>{5, 6, 0, 0}));
}

TEST(Cmam, UnregisteredHandlerPanics)
{
    ThrowOnError guard;
    Stack stack(twoNodes());
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    // Valid send to node 1 but polled on node 1 with a hole: craft a
    // handler index beyond what node 1 registered.
    stack.cmam(0).am4(1, h + 1, {});
    stack.settle();
    EXPECT_THROW(stack.cmam(1).poll(), log_detail::SimError);
}

TEST(Cmam, OversizedPayloadFatal)
{
    ThrowOnError guard;
    Stack stack(twoNodes());
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    EXPECT_THROW(stack.cmam(0).am4(1, h, {1, 2, 3, 4, 5}),
                 log_detail::SimError);
}

// --- Segment table -------------------------------------------------

TEST(Segments, AllocAndFreeRoundTrip)
{
    Stack stack(twoNodes());
    Node &n = stack.node(0);
    SegmentTable &segs = stack.cmam(0).segments();

    const Word id = segs.alloc(n.proc(), 0x100, 4);
    ASSERT_NE(id, invalidSegment);
    EXPECT_TRUE(segs.isActive(id));
    EXPECT_EQ(segs.bufBase(id), 0x100u);
    EXPECT_EQ(segs.remaining(id), 4u);
    EXPECT_EQ(segs.allocatedCount(), 1);

    segs.free(n.proc(), id);
    EXPECT_FALSE(segs.isActive(id));
    EXPECT_EQ(segs.allocatedCount(), 0);
}

TEST(Segments, AllocChargesPaperCosts)
{
    Stack stack(twoNodes());
    Node &n = stack.node(0);
    SegmentTable &segs = stack.cmam(0).segments();

    const InstrCounter before = n.acct().counter();
    const Word id = segs.alloc(n.proc(), 0x40, 2);
    InstrCounter alloc_cost = n.acct().counter().diff(before);
    EXPECT_EQ(alloc_cost.categoryTotal(Category::Reg), 25u);
    EXPECT_EQ(alloc_cost.categoryTotal(Category::Mem), 8u);
    EXPECT_EQ(alloc_cost.categoryTotal(Category::Dev), 0u);

    const InstrCounter mid = n.acct().counter();
    segs.free(n.proc(), id);
    InstrCounter free_cost = n.acct().counter().diff(mid);
    EXPECT_EQ(free_cost.categoryTotal(Category::Reg), 18u);
    EXPECT_EQ(free_cost.categoryTotal(Category::Mem), 3u);
}

TEST(Segments, ExhaustionReturnsInvalid)
{
    StackConfig cfg = twoNodes();
    cfg.maxSegments = 2;
    Stack stack(cfg);
    Node &n = stack.node(0);
    SegmentTable &segs = stack.cmam(0).segments();

    EXPECT_NE(segs.alloc(n.proc(), 0, 1), invalidSegment);
    EXPECT_NE(segs.alloc(n.proc(), 0, 1), invalidSegment);
    EXPECT_EQ(segs.alloc(n.proc(), 0, 1), invalidSegment);
    EXPECT_FALSE(segs.hasFree());
}

TEST(Segments, FifoReuseMaximizesDistance)
{
    StackConfig cfg = twoNodes();
    cfg.maxSegments = 4;
    Stack stack(cfg);
    Node &n = stack.node(0);
    SegmentTable &segs = stack.cmam(0).segments();

    const Word a = segs.alloc(n.proc(), 0, 1); // 0
    segs.free(n.proc(), a);
    // The just-freed id must go to the back of the queue.
    const Word b = segs.alloc(n.proc(), 0, 1);
    EXPECT_NE(b, a);
}

TEST(Segments, PacketArrivedCountsDown)
{
    Stack stack(twoNodes());
    Node &n = stack.node(0);
    SegmentTable &segs = stack.cmam(0).segments();
    const Word id = segs.alloc(n.proc(), 0, 3);
    EXPECT_FALSE(segs.packetArrived(n.proc(), id));
    EXPECT_FALSE(segs.packetArrived(n.proc(), id));
    EXPECT_TRUE(segs.packetArrived(n.proc(), id));
}

TEST(Segments, CompletionCallbackTakenOnce)
{
    Stack stack(twoNodes());
    Node &n = stack.node(0);
    SegmentTable &segs = stack.cmam(0).segments();
    const Word id = segs.alloc(n.proc(), 0, 1);
    int fired = 0;
    segs.setCompletion(id, [&fired](Word) { ++fired; });
    auto fn = segs.takeCompletion(id);
    fn(id);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(static_cast<bool>(segs.takeCompletion(id)));
}

// --- xfer send/receive without the full protocol -------------------

TEST(Cmam, XferMovesMemoryToSegmentBuffer)
{
    Stack stack(twoNodes());
    Node &src = stack.node(0);
    Node &dst = stack.node(1);

    const Addr sbuf = src.mem().alloc(16);
    const Addr dbuf = dst.mem().alloc(16);
    for (Word i = 0; i < 16; ++i)
        src.mem().write(sbuf + i, 1000 + i);

    const Word seg = stack.cmam(1).segments().alloc(dst.proc(), dbuf, 4);
    bool complete = false;
    stack.cmam(1).segments().setCompletion(seg,
                                           [&](Word) { complete = true; });

    stack.cmam(0).xferSend(1, seg, sbuf, 16);
    stack.settle();
    stack.cmam(1).poll();

    EXPECT_TRUE(complete);
    for (Word i = 0; i < 16; ++i)
        EXPECT_EQ(dst.mem().read(dbuf + i), 1000 + i);
}

TEST(Cmam, XferOffsetsMakeItOrderInsensitive)
{
    // The offset-carrying protocol must place data correctly even
    // when every adjacent pair of packets is swapped in flight.
    StackConfig cfg = twoNodes();
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    Node &src = stack.node(0);
    Node &dst = stack.node(1);

    const Addr sbuf = src.mem().alloc(32);
    const Addr dbuf = dst.mem().alloc(32);
    for (Word i = 0; i < 32; ++i)
        src.mem().write(sbuf + i, 7000 + i);

    const Word seg = stack.cmam(1).segments().alloc(dst.proc(), dbuf, 8);
    stack.cmam(0).xferSend(1, seg, sbuf, 32);
    stack.settle();
    stack.cmam(1).poll();

    for (Word i = 0; i < 32; ++i)
        EXPECT_EQ(dst.mem().read(dbuf + i), 7000 + i);
}

TEST(Cmam, XferRejectsNonMultipleSize)
{
    ThrowOnError guard;
    Stack stack(twoNodes());
    EXPECT_THROW(stack.cmam(0).xferSend(1, 0, 0, 10),
                 log_detail::SimError);
}

} // namespace
} // namespace msgsim

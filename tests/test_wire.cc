/**
 * @file
 * The wire layer: marshalling round-trips, COBS/CRC framing (with
 * the fuzz-style corrupt-one-byte property the decoder must survive
 * under ASan/UBSan), typed headers, and the StreamMux multi-stream
 * transport — flow control, corruption recovery, reset and
 * attach/detach semantics — on all four substrates.
 */

#include <gtest/gtest.h>

#include "protocols/stream.hh"
#include "sim/rng.hh"
#include "wire/frame.hh"
#include "wire/mux.hh"
#include "wire/wire_run.hh"

namespace msgsim
{
namespace
{

using wire::Bytes;
using wire::Frame;
using wire::FrameDecoder;
using wire::PacketType;
using wire::StreamHeader;

// ----------------------------------------------------------------
// Marshalling.
// ----------------------------------------------------------------

TEST(WireMarshal, RoundTripsFixedWidthFields)
{
    Bytes buf;
    wire::Writer w(buf);
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    const std::uint8_t raw[] = {1, 0, 2};
    w.bytes(raw, sizeof raw);
    EXPECT_EQ(buf.size(), 10u);

    wire::Reader r(buf);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    Bytes tail;
    EXPECT_TRUE(r.bytes(tail, 3));
    EXPECT_EQ(tail, Bytes({1, 0, 2}));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireMarshal, ReaderGoesBadInsteadOfOverReading)
{
    const Bytes buf = {0x01, 0x02};
    wire::Reader r(buf);
    EXPECT_EQ(r.u32(), 0u); // short: goes bad, yields zero
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0u); // stays bad
    Bytes out;
    EXPECT_FALSE(r.bytes(out, 1));
}

TEST(WireMarshal, LittleEndianOnTheWire)
{
    Bytes buf;
    wire::Writer w(buf);
    w.u32(0x11223344u);
    EXPECT_EQ(buf, Bytes({0x44, 0x33, 0x22, 0x11}));
}

// ----------------------------------------------------------------
// COBS + CRC.
// ----------------------------------------------------------------

TEST(WireCobs, RoundTripsRepresentativePayloads)
{
    const std::vector<Bytes> cases = {
        {},
        {0x00},
        {0x11},
        {0x00, 0x00, 0x00},
        {0x11, 0x00, 0x22},
        Bytes(253, 0x5a),
        Bytes(254, 0x5a),
        Bytes(255, 0x5a),
        Bytes(600, 0x00),
    };
    for (const Bytes &in : cases) {
        Bytes enc;
        wire::cobsEncode(in.data(), in.size(), enc);
        EXPECT_LE(enc.size(), wire::cobsMaxEncoded(in.size()));
        for (const std::uint8_t b : enc)
            EXPECT_NE(b, 0x00) << "encoding must be zero-free";
        Bytes dec;
        ASSERT_TRUE(wire::cobsDecode(enc.data(), enc.size(), dec));
        EXPECT_EQ(dec, in);
    }
}

TEST(WireCobs, RejectsMalformedEncodings)
{
    Bytes out;
    // A code byte pointing past the end of the block.
    const Bytes overrun = {0x05, 0x11};
    EXPECT_FALSE(
        wire::cobsDecode(overrun.data(), overrun.size(), out));
    // A zero code byte (the delimiter leaked into the block).
    const Bytes zero = {0x01, 0x00};
    EXPECT_FALSE(wire::cobsDecode(zero.data(), zero.size(), out));
}

TEST(WireCobs, Crc32MatchesKnownVector)
{
    // IEEE 802.3 CRC of "123456789" — the standard check value.
    const char *s = "123456789";
    EXPECT_EQ(wire::crc32(
                  reinterpret_cast<const std::uint8_t *>(s), 9),
              0xcbf43926u);
}

// ----------------------------------------------------------------
// Typed headers.
// ----------------------------------------------------------------

TEST(WireHeader, RoundTripsEveryType)
{
    for (int t = 0x1; t <= 0x8; ++t) {
        StreamHeader h;
        h.sid = 0x0102;
        h.type = static_cast<PacketType>(t);
        h.window = 7;
        h.seq = 0xfeed1234u;
        Bytes buf;
        wire::Writer w(buf);
        h.encode(w);
        EXPECT_EQ(buf.size(), StreamHeader::encodedSize(h.type));

        wire::Reader r(buf);
        StreamHeader back;
        ASSERT_TRUE(back.decode(r));
        EXPECT_EQ(back.sid, h.sid);
        EXPECT_EQ(back.type, h.type);
        EXPECT_EQ(back.window, h.window);
        if (StreamHeader::hasSeq(h.type)) {
            EXPECT_EQ(back.seq, h.seq);
        }
    }
}

TEST(WireHeader, RejectsBadMagicAndBadType)
{
    Bytes buf;
    wire::Writer w(buf);
    StreamHeader h;
    h.type = PacketType::Data;
    h.encode(w);

    Bytes bad = buf;
    bad[0] ^= 0xff; // magic
    wire::Reader r1(bad);
    StreamHeader out;
    EXPECT_FALSE(out.decode(r1));

    bad = buf;
    bad[6] = 0x9; // type out of vocabulary
    wire::Reader r2(bad);
    EXPECT_FALSE(out.decode(r2));
}

// ----------------------------------------------------------------
// Frame encode/decode.
// ----------------------------------------------------------------

TEST(WireFrame, EncodeDecodeRoundTrip)
{
    StreamHeader h;
    h.sid = 3;
    h.type = PacketType::Data;
    h.window = 4;
    h.seq = 41;
    const Bytes payload = {0xde, 0x00, 0xad, 0x00, 0xbe, 0xef};
    Bytes f;
    wire::encodeFrame(h, payload, f);
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f.back(), 0x00) << "frame ends at the delimiter";

    std::vector<Frame> got;
    FrameDecoder dec([&got](const Frame &fr) { got.push_back(fr); });
    dec.push(f);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].header.sid, h.sid);
    EXPECT_EQ(got[0].header.seq, h.seq);
    EXPECT_EQ(got[0].payload, payload);
    EXPECT_EQ(dec.crcRejects(), 0u);
    EXPECT_EQ(dec.malformed(), 0u);
}

TEST(WireFrame, DecoderSplitsChunksAndSkipsPadding)
{
    StreamHeader h;
    h.type = PacketType::Ack;
    h.seq = 9;
    Bytes stream;
    wire::encodeFrame(h, {}, stream);
    stream.insert(stream.end(), 5, 0x00); // inter-frame padding
    h.seq = 10;
    wire::encodeFrame(h, {}, stream);

    std::vector<std::uint32_t> seqs;
    FrameDecoder dec(
        [&seqs](const Frame &f) { seqs.push_back(f.header.seq); });
    // Byte-at-a-time: the decoder is a resynchronizing stream
    // consumer, chunk boundaries must not matter.
    for (const std::uint8_t b : stream)
        dec.push(&b, 1);
    EXPECT_EQ(seqs, (std::vector<std::uint32_t>{9, 10}));
    EXPECT_EQ(dec.malformed(), 0u);
}

// The satellite fuzz property: random payloads, encode, corrupt one
// byte anywhere in the wire image, decode.  The decoder must either
// reject the frame (CRC or framing) or deliver it byte-exact —
// never crash, never over-read (ASan/UBSan gate this), and never
// surface a *different* frame as valid (the corrupted-delimiter case
// may legitimately split one frame into rejected fragments).
TEST(WireFuzz, CorruptOneByteNeverYieldsAWrongFrame)
{
    Rng rng(0xc0b5f00dULL);
    for (int iter = 0; iter < 400; ++iter) {
        StreamHeader h;
        h.sid = static_cast<std::uint16_t>(rng.below(5));
        h.type = PacketType::Data;
        h.window = static_cast<std::uint8_t>(rng.below(16));
        h.seq = static_cast<std::uint32_t>(rng.below(1000));
        Bytes payload(rng.below(300));
        for (auto &b : payload)
            b = static_cast<std::uint8_t>(rng.below(256));

        Bytes clean;
        wire::encodeFrame(h, payload, clean);

        Bytes dirty = clean;
        const std::size_t at = static_cast<std::size_t>(
            rng.below(dirty.size()));
        const auto flip = static_cast<std::uint8_t>(
            1 + rng.below(255));
        dirty[at] ^= flip;

        std::size_t delivered = 0;
        bool exact = false;
        FrameDecoder dec([&](const Frame &f) {
            ++delivered;
            exact = f.header.sid == h.sid && f.header.seq == h.seq &&
                    f.payload == payload;
        });
        dec.push(dirty);
        dec.push(Bytes{0x00}); // flush a corrupted-away delimiter
        if (delivered > 0) {
            EXPECT_EQ(delivered, 1u);
            EXPECT_TRUE(exact)
                << "iter " << iter << ": corrupted frame surfaced "
                << "as valid but differs from the original";
        } else {
            EXPECT_GE(dec.crcRejects() + dec.malformed(), 1u)
                << "iter " << iter;
        }
    }
}

TEST(WireFuzz, DecoderSurvivesArbitraryGarbage)
{
    Rng rng(0xfeedbeefULL);
    FrameDecoder dec([](const Frame &) {});
    for (int iter = 0; iter < 200; ++iter) {
        Bytes junk(rng.below(700));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.below(256));
        dec.push(junk); // must not crash or over-read
    }
    dec.push(Bytes{0x00});
    EXPECT_EQ(dec.frames() + dec.crcRejects() + dec.malformed(),
              dec.frames() + dec.crcRejects() + dec.malformed());
}

// ----------------------------------------------------------------
// StreamMux: the multi-stream transport.
// ----------------------------------------------------------------

StackConfig
wireStack(Substrate sub)
{
    StackConfig cfg;
    cfg.substrate = sub;
    cfg.nodes = 4;
    cfg.dataWords = 4;
    return cfg;
}

class WireSubstrate : public ::testing::TestWithParam<Substrate>
{
};

TEST_P(WireSubstrate, MultiStreamWorkloadDeliversInOrder)
{
    Stack stack(wireStack(GetParam()));
    wire::WireWorkload w;
    const wire::WireRunResult res = wire::runWireWorkload(stack, w);
    EXPECT_TRUE(res.run.dataOk);
    EXPECT_EQ(res.wire.dataDelivered,
              static_cast<std::uint64_t>(w.streams) *
                  w.framesPerStream);
    EXPECT_EQ(res.wire.deliveredAfterReset, 0u);
    EXPECT_EQ(res.crcRejects, 0u);
    EXPECT_EQ(res.malformed, 0u);
    EXPECT_GT(res.run.counts.featureTotal(Feature::Framing), 0u);
}

TEST_P(WireSubstrate, CorruptionIsRecoveredByWireRetransmit)
{
    Stack stack(wireStack(GetParam()));
    wire::WireWorkload w;
    w.corruptEvery = 3;
    const wire::WireRunResult res = wire::runWireWorkload(stack, w);
    EXPECT_TRUE(res.run.dataOk);
    EXPECT_GT(res.crcRejects, 0u);
    EXPECT_GT(res.wire.wireRetransmits, 0u);
    EXPECT_EQ(res.wire.dataDelivered,
              static_cast<std::uint64_t>(w.streams) *
                  w.framesPerStream);
}

TEST_P(WireSubstrate, RunsAreDeterministic)
{
    wire::WireWorkload w;
    w.corruptEvery = 4;
    Stack a(wireStack(GetParam()));
    Stack b(wireStack(GetParam()));
    const wire::WireRunResult ra = wire::runWireWorkload(a, w);
    const wire::WireRunResult rb = wire::runWireWorkload(b, w);
    EXPECT_EQ(ra.run.counts.paperTotal(),
              rb.run.counts.paperTotal());
    EXPECT_EQ(ra.run.counts.featureTotal(Feature::Framing),
              rb.run.counts.featureTotal(Feature::Framing));
    EXPECT_EQ(ra.wire.framedBytes, rb.wire.framedBytes);
    EXPECT_EQ(ra.wire.wireRetransmits, rb.wire.wireRetransmits);
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, WireSubstrate,
                         ::testing::Values(Substrate::Cm5,
                                           Substrate::Cr,
                                           Substrate::Rdma,
                                           Substrate::Nicam),
                         [](const auto &info) {
                             return std::string(
                                 toString(info.param));
                         });

TEST(WireMux, RdmaOffloadMakesFramingVanish)
{
    wire::WireWorkload w;
    Stack cm5(wireStack(Substrate::Cm5));
    Stack rdma(wireStack(Substrate::Rdma));
    const auto sw = wire::runWireWorkload(cm5, w);
    const auto hw = wire::runWireWorkload(rdma, w);
    const std::uint64_t swF =
        sw.run.counts.featureTotal(Feature::Framing);
    const std::uint64_t hwF =
        hw.run.counts.featureTotal(Feature::Framing);
    ASSERT_GT(swF, 0u);
    ASSERT_GT(hwF, 0u);
    // The differential's "vanishes" threshold: the offloaded bill
    // keeps at most 10% of the software one.
    EXPECT_LE(hwF * 10, swF);
    // The protocol machinery is held constant, so the classic
    // feature columns are identical across the pair.
    EXPECT_EQ(sw.run.counts.featureTotal(Feature::BaseCost),
              hw.run.counts.featureTotal(Feature::BaseCost));
    EXPECT_EQ(sw.run.counts.featureTotal(Feature::FaultTolerance),
              hw.run.counts.featureTotal(Feature::FaultTolerance));
}

TEST(WireMux, WindowStallsAndBacklogDrain)
{
    Stack stack(wireStack(Substrate::Cm5));
    wire::WireWorkload w;
    w.streams = 1;
    w.framesPerStream = 6;
    w.window = 1;
    const wire::WireRunResult res = wire::runWireWorkload(stack, w);
    EXPECT_TRUE(res.run.dataOk);
    EXPECT_GE(res.wire.windowStalls, 5u);
    EXPECT_EQ(res.wire.dataDelivered, 6u);
}

TEST(WireMux, ResetDiscardsInFlightData)
{
    Stack stack(wireStack(Substrate::Cm5));
    StreamProtocol proto(stack);
    wire::MuxOptions mo;
    mo.ringPackets = 128;
    mo.window = 4;
    std::unique_ptr<wire::StreamMux> mux;
    std::uint64_t delivered = 0;
    mux = std::make_unique<wire::StreamMux>(
        stack, proto, 0, 1, mo,
        [&](std::uint16_t sid, std::uint32_t,
            const std::vector<Word> &) {
            if (++delivered == 1)
                mux->resetStream(sid);
        });
    const std::uint16_t sid = mux->openStream();
    for (std::uint32_t i = 0; i < 4; ++i)
        mux->send(sid, {0x10 + i, 0x20 + i});
    mux->flush();
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(mux->sendState(sid), wire::SendState::Reset);
    EXPECT_EQ(mux->recvState(sid), wire::RecvState::Reset);
    EXPECT_EQ(mux->stats().deliveredAfterReset, 0u);
    EXPECT_EQ(mux->unacked(sid), 0u);
    EXPECT_EQ(mux->backlog(sid), 0u);
    EXPECT_TRUE(mux->quiescent());
}

TEST(WireMux, SeededResetBugDeliversAfterReset)
{
    Stack stack(wireStack(Substrate::Cm5));
    StreamProtocol proto(stack);
    wire::MuxOptions mo;
    mo.ringPackets = 128;
    mo.window = 4;
    std::unique_ptr<wire::StreamMux> mux;
    std::uint64_t delivered = 0;
    mux = std::make_unique<wire::StreamMux>(
        stack, proto, 0, 1, mo,
        [&](std::uint16_t sid, std::uint32_t,
            const std::vector<Word> &) {
            if (++delivered == 1)
                mux->resetStream(sid);
        });
    mux->setBugResetDeliver(true);
    const std::uint16_t sid = mux->openStream();
    for (std::uint32_t i = 0; i < 4; ++i)
        mux->send(sid, {0x30 + i, 0x40 + i});
    mux->flush();
    EXPECT_GT(mux->stats().deliveredAfterReset, 0u)
        << "the seeded bug must be observable (the checker's prey)";
}

TEST(WireMux, DeferredDetachCompletesAfterAcks)
{
    Stack stack(wireStack(Substrate::Cm5));
    StreamProtocol proto(stack);
    wire::MuxOptions mo;
    mo.ringPackets = 128;
    mo.window = 2;
    std::uint64_t delivered = 0;
    wire::StreamMux mux(
        stack, proto, 0, 1, mo,
        [&](std::uint16_t, std::uint32_t,
            const std::vector<Word> &) { ++delivered; });
    const std::uint16_t a = mux.openStream();
    for (std::uint32_t i = 0; i < 3; ++i)
        mux.send(a, {i, i + 1});
    mux.closeStream(a);
    EXPECT_EQ(mux.sendState(a), wire::SendState::Closing)
        << "detach must defer while frames are unacked";
    // A second stream attaches while the first is still closing.
    const std::uint16_t b = mux.openStream();
    mux.send(b, {7, 8});
    mux.closeStream(b);
    mux.flush();
    EXPECT_EQ(delivered, 4u);
    EXPECT_EQ(mux.sendState(a), wire::SendState::Detached);
    EXPECT_EQ(mux.recvState(a), wire::RecvState::Detached);
    EXPECT_EQ(mux.sendState(b), wire::SendState::Detached);
    EXPECT_EQ(mux.recvState(b), wire::RecvState::Detached);
    EXPECT_EQ(mux.stats().attaches, 2u);
    EXPECT_EQ(mux.stats().detaches, 2u);
}

TEST(WireMux, FramingChargesLandOnTheFramingFeature)
{
    Stack stack(wireStack(Substrate::Cm5));
    wire::WireWorkload w;
    const wire::WireRunResult res = wire::runWireWorkload(stack, w);
    const auto &c = res.run.counts;
    // Framing rides outside the four paper features: paperTotal is
    // the classic sum and excludes the new column by construction.
    std::uint64_t classic = 0;
    for (int f = 0; f < numPaperFeatures; ++f)
        classic += c.featureTotal(static_cast<Feature>(f));
    EXPECT_EQ(c.paperTotal(), classic);
    EXPECT_GT(c.featureTotal(Feature::Framing), 0u);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Behavioural tests of the two routing substrates: the CM-5-like
 * network really delivers out of order, backpressures, and only
 * *detects* faults; the CR network really delivers in order, rejects
 * and retries in hardware, and corrects faults invisibly.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cm5net/cm5_network.hh"
#include "crnet/cr_network.hh"
#include "sim/event.hh"

namespace msgsim
{
namespace
{

Packet
mkPacket(NodeId src, NodeId dst, Word tagval)
{
    return Packet(src, dst, HwTag::StreamData, tagval,
                  {tagval, tagval + 1, tagval + 2, tagval + 3});
}

TEST(Cm5Network, DeliversAllPacketsFifoByDefault)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    Cm5Network net(sim, cfg);

    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 20; ++i)
        EXPECT_TRUE(net.inject(mkPacket(0, 1, i)));
    sim.run();
    ASSERT_EQ(got.size(), 20u);
    for (Word i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], i);
    EXPECT_EQ(net.stats().injected, 20u);
    EXPECT_EQ(net.stats().delivered, 20u);
}

TEST(Cm5Network, JitterProducesGenuineReordering)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 16;
    cfg.maxJitter = 50;
    cfg.seed = 7;
    Cm5Network net(sim, cfg);

    std::vector<Word> got;
    net.attach(5, [&](Packet &&p) {
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 200; ++i)
        EXPECT_TRUE(net.inject(mkPacket(0, 5, i)));
    sim.run();
    ASSERT_EQ(got.size(), 200u);
    int inversions = 0;
    for (std::size_t i = 1; i < got.size(); ++i)
        inversions += got[i] < got[i - 1];
    EXPECT_GT(inversions, 10); // arbitrary delivery order, for real
}

TEST(Cm5Network, SwapAdjacentPolicyScramblesDeterministically)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    cfg.orderFactory = swapAdjacentFactory();
    Cm5Network net(sim, cfg);

    std::vector<Word> got;
    net.attach(2, [&](Packet &&p) {
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 6; ++i)
        net.inject(mkPacket(0, 2, i));
    sim.run();
    EXPECT_EQ(got, (std::vector<Word>{1, 0, 3, 2, 5, 4}));
}

TEST(Cm5Network, BackpressureRetriesUntilSinkAccepts)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    Cm5Network net(sim, cfg);

    int refusals_left = 3;
    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        if (refusals_left > 0) {
            --refusals_left;
            return false;
        }
        got.push_back(p.header);
        return true;
    });
    net.inject(mkPacket(0, 1, 42));
    sim.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42u);
    EXPECT_EQ(net.stats().deliveryRetries, 3u);
}

TEST(Cm5Network, DropsAreSilent)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    Cm5Network net(sim, cfg);
    net.faults().scriptDrop(0);

    int delivered = 0;
    net.attach(1, [&](Packet &&) {
        ++delivered;
        return true;
    });
    net.inject(mkPacket(0, 1, 1));
    net.inject(mkPacket(0, 1, 2));
    sim.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(Cm5Network, CorruptionTravelsToSink)
{
    // Detection happens at the NI, not inside the network: a
    // corrupted packet is still delivered, with a failing checksum.
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    Cm5Network net(sim, cfg);
    net.faults().scriptCorrupt(0);

    bool saw_bad = false;
    net.attach(1, [&](Packet &&p) {
        saw_bad = !p.checksumOk();
        return true;
    });
    net.inject(mkPacket(0, 1, 9));
    sim.run();
    EXPECT_TRUE(saw_bad);
    EXPECT_EQ(net.stats().corrupted, 1u);
}

TEST(Cm5Network, InjectBusyRefusesAtInjection)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 4;
    cfg.injectBusyRate = 1.0;
    Cm5Network net(sim, cfg);
    net.attach(1, [](Packet &&) { return true; });
    EXPECT_FALSE(net.inject(mkPacket(0, 1, 0)));
    EXPECT_EQ(net.stats().injected, 0u);
}

TEST(Cm5Network, FartherNodesTakeLonger)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 16;
    cfg.arity = 4;
    Cm5Network net(sim, cfg);

    std::map<NodeId, Tick> arrival;
    for (NodeId d : {1u, 4u}) {
        net.attach(d, [&, d](Packet &&) {
            arrival[d] = sim.now();
            return true;
        });
        net.inject(mkPacket(0, d, 0));
    }
    sim.run();
    // Node 1 shares a leaf switch with node 0; node 4 needs an extra
    // level.
    EXPECT_LT(arrival[1], arrival[4]);
}

// --- CR network ----------------------------------------------------

TEST(CrNetwork, InOrderAlways)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 16;
    CrNetwork net(sim, cfg);

    std::vector<Word> got;
    net.attach(3, [&](Packet &&p) {
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 100; ++i)
        net.inject(mkPacket(0, 3, i));
    sim.run();
    ASSERT_EQ(got.size(), 100u);
    for (Word i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(CrNetwork, FaultsAreCorrectedInHardware)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 4;
    cfg.faults.dropRate = 0.3;
    cfg.faults.corruptRate = 0.2;
    cfg.faults.seed = 5;
    CrNetwork net(sim, cfg);

    std::vector<Word> got;
    int bad = 0;
    net.attach(1, [&](Packet &&p) {
        got.push_back(p.header);
        bad += !p.checksumOk();
        return true;
    });
    for (Word i = 0; i < 200; ++i)
        net.inject(mkPacket(0, 1, i));
    sim.run();
    ASSERT_EQ(got.size(), 200u); // reliable delivery
    EXPECT_EQ(bad, 0);           // never corrupted to software
    EXPECT_GT(net.stats().hwRetries, 0u); // the hardware worked for it
    for (Word i = 0; i < 200; ++i)
        EXPECT_EQ(got[i], i); // order preserved across retries
}

TEST(CrNetwork, RejectionRetriesPreserveOrder)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 4;
    CrNetwork net(sim, cfg);

    // The sink rejects the FIRST packet three times; later packets
    // must still arrive after it.
    int refusals_left = 3;
    std::vector<Word> got;
    net.attach(1, [&](Packet &&p) {
        if (p.header == 0 && refusals_left > 0) {
            --refusals_left;
            return false;
        }
        got.push_back(p.header);
        return true;
    });
    for (Word i = 0; i < 5; ++i)
        net.inject(mkPacket(0, 1, i));
    sim.run();
    EXPECT_EQ(got, (std::vector<Word>{0, 1, 2, 3, 4}));
    EXPECT_EQ(net.stats().deliveryRetries, 3u);
}

TEST(CrNetwork, IndependentFlowsDontBlockEachOther)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 4;
    CrNetwork net(sim, cfg);

    std::vector<std::pair<NodeId, Word>> got;
    bool reject0 = true;
    net.attach(1, [&](Packet &&p) {
        if (p.src == 0 && reject0)
            return false; // flow 0->1 stuck
        got.emplace_back(p.src, p.header);
        return true;
    });
    net.inject(mkPacket(0, 1, 100));
    net.inject(mkPacket(2, 1, 200));
    sim.runUntil([&] { return !got.empty(); });
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got[0].first, 2u); // the other flow progressed
    reject0 = false;
    sim.run();
    ASSERT_EQ(got.size(), 2u);
}

} // namespace
} // namespace msgsim

# ctest golden gate for the msgsim-prof differential report: the
# CLI's --json-out for the paper's headline CM-5-vs-CR comparison
# must be byte-identical to the committed golden.
#
# Variables (passed with -D):
#   PROF_BIN   path to the msgsim-prof executable
#   GOLDEN     committed golden JSON
#   WORK_DIR   scratch directory for the fresh report

set(fresh "${WORK_DIR}/prof_differential.json")

execute_process(
    COMMAND "${PROF_BIN}"
        --protocol=xfer --substrate=cm5 --baseline=cr
        "--json-out=${fresh}"
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "msgsim-prof exited with status ${rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${fresh}" "${GOLDEN}"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    execute_process(COMMAND diff -u "${GOLDEN}" "${fresh}")
    message(FATAL_ERROR
        "differential report drifted from ${GOLDEN}; regenerate with "
        "msgsim-prof --protocol=xfer --substrate=cm5 --baseline=cr "
        "--json-out=tests/golden/prof_differential.json")
endif()

/**
 * @file
 * Tests of the declarative traffic engine: pattern shapes, the
 * substrate x protocol grid (exactly-once delivery everywhere), the
 * compositional analytic predictor (predicted == measured, exactly),
 * seeded determinism, and the in-order / fault-tolerance machinery
 * firing exactly when the paper says it should.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "model/traffic_model.hh"
#include "traffic/engine.hh"
#include "traffic/traffic.hh"

namespace msgsim
{
namespace
{

/// Relative agreement the W1 gate uses: exact up to fp rounding.
bool
agrees(double predicted, double measured)
{
    const double diff = predicted > measured ? predicted - measured
                                             : measured - predicted;
    const double scale = std::max(
        1.0, std::max(std::abs(predicted), std::abs(measured)));
    return diff <= 1e-9 * scale;
}

TrafficSpec
smallSpec(TrafficPattern pattern, TrafficProto proto)
{
    TrafficSpec spec;
    spec.pattern = pattern;
    spec.proto = proto;
    spec.nodes = 8;
    spec.messagesPerNode = 4;
    spec.sizeWords = 5; // 3 fragments
    spec.seed = 7;
    return spec;
}

TEST(TrafficSpec, FragmentationRule)
{
    TrafficSpec spec;
    const std::pair<std::uint32_t, std::uint32_t> cases[] = {
        {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 4}, {9, 5}};
    for (const auto &[size, frags] : cases) {
        spec.sizeWords = size;
        EXPECT_EQ(spec.fragmentsPerMessage(), frags) << size;
    }
}

TEST(TrafficSpec, StringRoundTrips)
{
    for (const char *name : {"am", "seq", "acked"}) {
        TrafficProto p;
        ASSERT_TRUE(protoFromString(name, p)) << name;
        EXPECT_STREQ(toString(p), name);
    }
    TrafficProto p;
    EXPECT_FALSE(protoFromString("bogus", p));

    for (const char *name : {"cm5", "cr", "rdma", "nicam"}) {
        Substrate s;
        ASSERT_TRUE(substrateFromString(name, s)) << name;
        EXPECT_STREQ(toString(s), name);
    }
    Substrate s;
    EXPECT_FALSE(substrateFromString("myrinet", s));

    for (const char *name :
         {"uniform-random", "permutation", "hotspot", "ring",
          "transpose", "incast", "alltoall"}) {
        TrafficPattern pat;
        ASSERT_TRUE(patternFromString(name, pat)) << name;
        EXPECT_STREQ(toString(pat), name);
    }
    TrafficPattern pat;
    EXPECT_FALSE(patternFromString("bogus", pat));
}

TEST(TrafficGen, IncastConvergesOnNodeZero)
{
    TrafficGen gen(16, TrafficPattern::Incast, 1);
    for (NodeId i = 0; i < 16; ++i)
        EXPECT_EQ(gen.destFor(i), i == 0 ? 1u : 0u) << i;
}

TEST(TrafficGen, AllToAllRotatesThroughEveryPeer)
{
    const std::uint32_t n = 6;
    TrafficGen gen(n, TrafficPattern::AllToAll, 1);
    for (NodeId src = 0; src < n; ++src) {
        std::set<NodeId> seen;
        for (std::uint32_t k = 0; k < n - 1; ++k) {
            const NodeId d = gen.destFor(src);
            EXPECT_NE(d, src);
            seen.insert(d);
        }
        EXPECT_EQ(seen.size(), n - 1) << src; // every peer, once
    }
}

// --- the substrate x protocol grid ---------------------------------

class TrafficGrid : public ::testing::TestWithParam<Substrate>
{
};

TEST_P(TrafficGrid, ExactlyOnceOnEveryProtocol)
{
    for (TrafficProto proto :
         {TrafficProto::Am, TrafficProto::Seq, TrafficProto::Acked}) {
        const TrafficSpec spec =
            smallSpec(TrafficPattern::Permutation, proto);
        Stack stack(trafficStackConfig(spec, GetParam()));
        TrafficEngine engine(stack);
        const TrafficResult res = engine.run(spec);

        ASSERT_TRUE(res.ok) << toString(proto);
        const std::uint64_t frags =
            static_cast<std::uint64_t>(spec.nodes) *
            spec.messagesPerNode * spec.fragmentsPerMessage();
        EXPECT_EQ(res.shape.fragmentsSent, frags);
        EXPECT_EQ(res.shape.fragmentsDelivered, frags);
        if (proto == TrafficProto::Acked) {
            const std::uint64_t msgs =
                static_cast<std::uint64_t>(spec.nodes) *
                spec.messagesPerNode;
            EXPECT_EQ(res.shape.acksSent, msgs);
            EXPECT_EQ(res.shape.acksDelivered, msgs);
        } else {
            EXPECT_EQ(res.shape.acksSent, 0u);
        }
        EXPECT_EQ(res.perNodeInstr.count(), spec.nodes);
    }
}

TEST_P(TrafficGrid, PredictionMatchesMeasurementExactly)
{
    for (TrafficPattern pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Incast,
          TrafficPattern::AllToAll}) {
        for (TrafficProto proto : {TrafficProto::Am,
                                   TrafficProto::Seq,
                                   TrafficProto::Acked}) {
            TrafficSpec spec = smallSpec(pattern, proto);
            spec.maxJitter = 3; // scramble cm5/nicam arrivals
            Stack stack(trafficStackConfig(spec, GetParam()));
            TrafficEngine engine(stack);
            const TrafficResult res = engine.run(spec);
            ASSERT_TRUE(res.ok)
                << toString(pattern) << "/" << toString(proto);

            const TrafficPrediction pred =
                predictTraffic(res.shape);
            for (int f = 0; f < numPaperFeatures; ++f) {
                const CatCost &p = pred.feature[f];
                const CatCost &m = res.measured[f];
                EXPECT_TRUE(agrees(p.reg, m.reg))
                    << toString(pattern) << "/" << toString(proto)
                    << " feature " << f << " reg " << p.reg
                    << " != " << m.reg;
                EXPECT_TRUE(agrees(p.mem, m.mem))
                    << toString(pattern) << "/" << toString(proto)
                    << " feature " << f << " mem " << p.mem
                    << " != " << m.mem;
                EXPECT_TRUE(agrees(p.dev, m.dev))
                    << toString(pattern) << "/" << toString(proto)
                    << " feature " << f << " dev " << p.dev
                    << " != " << m.dev;
            }
            EXPECT_TRUE(agrees(pred.grandTotal(),
                               res.measuredGrandTotal()));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Substrates, TrafficGrid,
                         ::testing::Values(Substrate::Cm5,
                                           Substrate::Cr,
                                           Substrate::Rdma,
                                           Substrate::Nicam));

// --- determinism and substrate-specific structure ------------------

TEST(TrafficEngine, SameSeedSameRun)
{
    auto runOnce = [] {
        TrafficSpec spec =
            smallSpec(TrafficPattern::UniformRandom,
                      TrafficProto::Acked);
        spec.maxJitter = 9;
        Stack stack(trafficStackConfig(spec, Substrate::Cm5));
        TrafficEngine engine(stack);
        return engine.run(spec);
    };
    const TrafficResult a = runOnce();
    const TrafficResult b = runOnce();
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.shape.polls, b.shape.polls);
    EXPECT_EQ(a.shape.ooo, b.shape.ooo);
    EXPECT_EQ(a.measuredGrandTotal(), b.measuredGrandTotal());
    EXPECT_EQ(a.maxOverMean, b.maxOverMean);
}

TEST(TrafficEngine, ReorderMachineryVanishesOnInOrderFabrics)
{
    // The paper's argument at traffic scale: the same seq workload
    // pays a reorder bill on the CM-5 fabric and none on cr/rdma.
    TrafficSpec spec =
        smallSpec(TrafficPattern::UniformRandom, TrafficProto::Seq);
    spec.nodes = 9;
    spec.maxJitter = 20;

    Stack cm5(trafficStackConfig(spec, Substrate::Cm5));
    TrafficEngine cm5Engine(cm5);
    const TrafficResult onCm5 = cm5Engine.run(spec);
    ASSERT_TRUE(onCm5.ok);
    EXPECT_GT(onCm5.shape.ooo, 0u);
    EXPECT_GT(onCm5.measured[static_cast<int>(
                                 Feature::InOrderDelivery)]
                  .total(),
              0.0);

    for (Substrate s : {Substrate::Cr, Substrate::Rdma}) {
        Stack stack(trafficStackConfig(spec, s));
        TrafficEngine engine(stack);
        const TrafficResult res = engine.run(spec);
        ASSERT_TRUE(res.ok) << toString(s);
        EXPECT_EQ(res.shape.ooo, 0u) << toString(s);
        EXPECT_EQ(res.hwRetries, 0u) << toString(s);
    }
}

TEST(TrafficEngine, AckedPaysFaultToleranceEvenFaultFree)
{
    const TrafficSpec spec =
        smallSpec(TrafficPattern::Ring, TrafficProto::Acked);
    Stack stack(trafficStackConfig(spec, Substrate::Rdma));
    TrafficEngine engine(stack);
    const TrafficResult res = engine.run(spec);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.hwRetries, 0u);
    EXPECT_GT(res.measured[static_cast<int>(
                               Feature::FaultTolerance)]
                  .total(),
              0.0);
    // am traffic on the same fabric pays nothing there.
    const TrafficSpec am =
        smallSpec(TrafficPattern::Ring, TrafficProto::Am);
    Stack stack2(trafficStackConfig(am, Substrate::Rdma));
    TrafficEngine engine2(stack2);
    const TrafficResult res2 = engine2.run(am);
    ASSERT_TRUE(res2.ok);
    EXPECT_EQ(res2.measured[static_cast<int>(
                                Feature::FaultTolerance)]
                  .total(),
              0.0);
}

TEST(TrafficEngine, RunIsRepeatableOnOneStack)
{
    // run() resets per-run state: back-to-back runs on one engine
    // must each deliver exactly once.
    TrafficSpec spec =
        smallSpec(TrafficPattern::AllToAll, TrafficProto::Seq);
    Stack stack(trafficStackConfig(spec, Substrate::Nicam));
    TrafficEngine engine(stack);
    for (int round = 0; round < 3; ++round) {
        const TrafficResult res = engine.run(spec);
        ASSERT_TRUE(res.ok) << round;
        EXPECT_EQ(res.shape.fragmentsDelivered,
                  res.shape.fragmentsSent)
            << round;
    }
}

// --- the collective predictor --------------------------------------

TEST(TrafficModel, ExpectedCollMessages)
{
    EXPECT_EQ(expectedCollMessages("tree", 8), 14u);
    EXPECT_EQ(expectedCollMessages("ring", 8), 14u);
    EXPECT_EQ(expectedCollMessages("rd", 8), 24u);
    EXPECT_EQ(expectedCollMessages("barrier", 8), 24u);
    EXPECT_EQ(expectedCollMessages("tree", 9), 16u);
    EXPECT_EQ(expectedCollMessages("barrier", 9), 36u);
}

} // namespace
} // namespace msgsim

/**
 * @file
 * Tests of the dual data networks (paper footnote 6): replies travel
 * virtual network 1, drain with priority, and get past backed-up
 * request traffic — the CM-5's two-physical-network trick.
 */

#include <gtest/gtest.h>

#include "protocols/finite_xfer.hh"
#include "protocols/rpc.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

TEST(Vnets, ReplyNetworkHasItsOwnFifo)
{
    // Fill the request network's receive FIFO to capacity; a reply
    // (vnet 1) must still be deliverable.
    StackConfig cfg;
    cfg.nodes = 3;
    cfg.recvCapacity = 2; // per virtual network
    Stack stack(cfg);
    Node &dst = stack.node(1);
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});

    // Two requests fill vnet 0 on node 1.
    stack.cmam(0).am4(1, h, {1});
    stack.cmam(0).am4(1, h, {2});
    stack.settle();
    ASSERT_EQ(dst.ni().hwRecvDepth(0), 2u);

    // A third request is refused (backpressured)...
    stack.cmam(2).am4(1, h, {3});
    stack.machine().sim().run(500);
    EXPECT_GT(dst.ni().recvRefusals(), 0u);
    EXPECT_EQ(dst.ni().hwRecvDepth(0), 2u);

    // ...but a reply-class packet sails through on vnet 1.
    stack.cmam(2).sendTagged(HwTag::UserAm, 1, hdr::pack(
                                 static_cast<std::uint32_t>(h), 0),
                             {99}, 4, /*vnet=*/1);
    stack.machine().sim().run(500);
    EXPECT_EQ(dst.ni().hwRecvDepth(1), 1u);
}

TEST(Vnets, ReplyDrainsFirst)
{
    // With both queues populated, the poll services the reply network
    // before the request network.
    StackConfig cfg;
    cfg.nodes = 2;
    Stack stack(cfg);
    std::vector<Word> order;
    const int h = stack.cmam(1).registerHandler(
        [&order](NodeId, const std::vector<Word> &args) {
            order.push_back(args[0]);
        });
    stack.cmam(0).am4(1, h, {10});                        // vnet 0
    stack.cmam(0).sendTagged(HwTag::UserAm, 1,
                             hdr::pack(static_cast<std::uint32_t>(h),
                                       0),
                             {20}, 4, 1);                 // vnet 1
    stack.cmam(0).am4(1, h, {11});                        // vnet 0
    stack.settle();
    stack.cmam(1).poll();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 20u); // the reply jumped the queue
    EXPECT_EQ(order[1], 10u);
    EXPECT_EQ(order[2], 11u);
}

TEST(Vnets, RoundTripCompletesDespiteRequestBacklog)
{
    // The footnote-6 scenario: node 1's request FIFO is saturated by
    // third-party traffic it never polls, yet an RPC caller still
    // completes because the *reply* path back to it is independent.
    StackConfig cfg;
    cfg.nodes = 3;
    cfg.recvCapacity = 1;
    Stack stack(cfg);
    RpcEngine rpc(stack);
    rpc.registerProcedure(1, 4,
                          [](NodeId, const std::vector<Word> &) {
                              return std::vector<Word>{7};
                          });

    // Node 2 saturates node 0's request FIFO (node 0 never polls, so
    // the backlog persists and further requests to it backpressure).
    const int sink = stack.cmam(0).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    stack.cmam(2).am4(0, sink, {0});
    stack.settle();
    ASSERT_EQ(stack.node(0).ni().hwRecvDepth(0), 1u);

    // Node 0 calls node 1; the reply lands on node 0's vnet 1 even
    // though its vnet 0 is full.
    const auto call = rpc.call(0, 1, 4, {});
    stack.settle();
    {
        FeatureScope fs(stack.node(1).acct(), Feature::BaseCost);
        stack.cmam(1).poll(); // server handles the request
    }
    stack.settle();
    ASSERT_EQ(stack.node(0).ni().hwRecvDepth(1), 1u);
    {
        FeatureScope fs(stack.node(0).acct(), Feature::BaseCost);
        stack.cmam(0).poll(); // caller reaps the reply (and backlog)
    }
    EXPECT_TRUE(rpc.done(call));
    EXPECT_EQ(rpc.reply(call)[0], 7u);
}

TEST(Vnets, CalibrationCountsUnchanged)
{
    // Routing acks/replies over vnet 1 must not move any instruction
    // count: Table 2 totals stay exact.
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    StreamParams p;
    p.words = 1024;
    const auto res = proto.run(p);
    ASSERT_TRUE(res.dataOk);
    EXPECT_EQ(res.counts.src.paperTotal(), 13824u);
    EXPECT_EQ(res.counts.dst.paperTotal(), 16141u);
}

TEST(Vnets, FinitePerVnetOrderingUnderScrambling)
{
    // Order policies operate per (src, dst, vnet): data scrambling on
    // vnet 0 never pairs a data packet with a vnet-1 ack.
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    FiniteXfer proto(stack);
    FiniteXferParams p;
    p.words = 64;
    const auto res = proto.run(p);
    EXPECT_TRUE(res.dataOk);
    EXPECT_EQ(res.counts.src.paperTotal(), 77u + 24u * 16u);
}

} // namespace
} // namespace msgsim

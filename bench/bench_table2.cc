/**
 * @file
 * Reproduces paper Table 2: "Multi-packet delivery costs for 16- and
 * 1024-word messages: packet size = 4 words" — the per-feature
 * breakdown of the finite-sequence and indefinite-sequence protocols
 * on the CMAM/CM-5 stack, regenerated from instrumented execution.
 *
 * Paper reference values (totals src/dst/total):
 *   finite     16 w:  173 /  224 /   397  (consistent with Tables
 *                      2+3; the prose's "285" is flagged in
 *                      EXPERIMENTS.md)
 *   indefinite 16 w:  216 /  265 /   481
 *   finite   1024 w: 6221 / 5516 / 11737
 *   indefinite 1024: 13824 / 16141 / 29965
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/report.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    for (std::uint32_t words : {16u, 1024u}) {
        banner("Table 2: message size = " + std::to_string(words) +
               " words");

        {
            Stack stack(paperCm5());
            FiniteXfer proto(stack);
            FiniteXferParams p;
            p.words = words;
            const auto res = proto.run(p);
            std::printf("%s", featureTable(
                                  "Finite sequence, multi-packet "
                                  "delivery",
                                  res.counts)
                                  .c_str());
            std::printf("data integrity: %s\n\n",
                        res.dataOk ? "ok" : "FAILED");
        }
        {
            Stack stack(paperCm5(/*halfOoo=*/true));
            StreamProtocol proto(stack);
            StreamParams p;
            p.words = words;
            const auto res = proto.run(p);
            std::printf("%s", featureTable(
                                  "Indefinite sequence, multi-packet "
                                  "delivery (half the packets arrive "
                                  "out of order)",
                                  res.counts)
                                  .c_str());
            std::printf("out-of-order arrivals: %llu of %llu; "
                        "acks: %llu; data integrity: %s\n",
                        static_cast<unsigned long long>(
                            res.oooArrivals),
                        static_cast<unsigned long long>(res.packets),
                        static_cast<unsigned long long>(res.acksSent),
                        res.dataOk ? "ok" : "FAILED");
            std::printf("overhead fraction (non-base): %s "
                        "(paper: ~70%% for indefinite)\n",
                        pct(res.counts.overheadFraction()).c_str());
        }
    }
    return 0;
}

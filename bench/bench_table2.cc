/**
 * @file
 * Table 2 of the paper — finite (T2a) and indefinite (T2b)
 * multi-packet feature breakdowns.  Thin wrapper over the registered
 * lab experiments in src/lab/experiments.cc.
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"T2a", "T2b"});
}

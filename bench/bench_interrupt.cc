/**
 * @file
 * Ablation for paper footnote 2: "The CM-5 NI also supports an
 * interrupt-driven interface for reception; however, the cost for
 * interrupts is very high for the SPARC processor."  Runs the same
 * event-driven stream under polling and under interrupts, across
 * arrival-scatter levels (latency jitter), and reports the price of
 * each trap.
 */

#include <cstdio>

#include "bench_common.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Reception discipline: poll vs interrupt "
           "(256-word stream, event mode)");
    std::printf("  %8s | %12s | %12s %10s | %8s\n", "jitter",
                "poll instr", "intr instr", "traps", "penalty");
    for (Tick jitter : {0ull, 10ull, 40ull, 160ull}) {
        StackConfig cfg = paperCm5();
        cfg.maxJitter = jitter;

        Stack s1(cfg);
        StreamProtocol p1(s1);
        StreamParams params;
        params.words = 256;
        params.eventMode = true;
        params.discipline = RecvDiscipline::Poll;
        const auto polled = p1.run(params);

        Stack s2(cfg);
        StreamProtocol p2(s2);
        params.discipline = RecvDiscipline::Interrupt;
        const auto intr = p2.run(params);

        const auto traps = s2.cmam(0).interruptsTaken() +
                           s2.cmam(1).interruptsTaken();
        std::printf("  %8llu | %12llu | %12llu %10llu | %7.1f%%%s%s\n",
                    static_cast<unsigned long long>(jitter),
                    static_cast<unsigned long long>(
                        polled.counts.paperTotal()),
                    static_cast<unsigned long long>(
                        intr.counts.paperTotal()),
                    static_cast<unsigned long long>(traps),
                    100.0 * (static_cast<double>(
                                 intr.counts.paperTotal()) /
                                 static_cast<double>(
                                     polled.counts.paperTotal()) -
                             1.0),
                    polled.dataOk ? "" : " [POLL FAILED]",
                    intr.dataOk ? "" : " [INTR FAILED]");
    }
    std::printf("\nscattered arrivals defeat trap batching: one "
                "~98-instruction trap per packet vs a 13-instruction "
                "poll entry — footnote 2's rationale for polling\n");
    return 0;
}

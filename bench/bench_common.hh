/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef MSGSIM_BENCH_BENCH_COMMON_HH
#define MSGSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "protocols/stack.hh"
#include "sim/obs_cli.hh"

namespace msgsim::bench
{

// Re-exported so every bench/example can accept --trace-out= /
// --metrics-out= with one include (see sim/obs_cli.hh).
using obs::Options;   // NOLINT(misc-unused-using-decls)
using obs::parseArgs; // NOLINT(misc-unused-using-decls)
using ObsScope = obs::Scope;

/** The paper's measurement setup: CM-5 substrate, n = 4. */
inline StackConfig
paperCm5(bool halfOoo = false)
{
    StackConfig cfg;
    cfg.substrate = Substrate::Cm5;
    cfg.nodes = 4;
    cfg.dataWords = 4;
    if (halfOoo)
        cfg.order = swapAdjacentFactory();
    return cfg;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

/** Print a percentage with one decimal. */
inline std::string
pct(double frac)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
    return buf;
}

} // namespace msgsim::bench

#endif // MSGSIM_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Table 3 of the paper (Appendix A) — reg/mem/dev instruction
 * subcategories.  Thin wrapper over the registered lab experiment in
 * src/lab/experiments.cc (T3).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"T3"});
}

/**
 * @file
 * Reproduces paper Table 3 (Appendix A): instruction subcategories
 * (reg / mem / dev) for the CMAM-based finite-sequence and
 * indefinite-sequence protocols at 16 and 1024 words, regenerated
 * from instrumented execution.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/report.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    for (std::uint32_t words : {16u, 1024u}) {
        banner("Table 3: message size = " + std::to_string(words) +
               " words");
        {
            Stack stack(paperCm5());
            FiniteXfer proto(stack);
            FiniteXferParams p;
            p.words = words;
            const auto res = proto.run(p);
            std::printf("%s\n", categoryTable(
                                    "Finite sequence, multi-packet "
                                    "delivery",
                                    res.counts)
                                    .c_str());
        }
        {
            Stack stack(paperCm5(/*halfOoo=*/true));
            StreamProtocol proto(stack);
            StreamParams p;
            p.words = words;
            const auto res = proto.run(p);
            std::printf("%s\n", categoryTable(
                                    "Indefinite sequence, multi-packet "
                                    "delivery",
                                    res.counts)
                                    .c_str());
        }
    }
    return 0;
}

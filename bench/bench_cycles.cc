/**
 * @file
 * Reproduces Appendix A's weighted cost models: instruction counts
 * re-weighted by category (the CM-5 example: reg = mem = 1 cycle,
 * dev = 5 cycles), showing how memory-mapped NI access amplifies
 * the base cost and shifts the balance of the breakdown.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/report.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    for (std::uint32_t words : {16u, 1024u}) {
        banner("Appendix A cycle model: finite sequence, " +
               std::to_string(words) + " words");
        Stack stack(paperCm5());
        FiniteXfer proto(stack);
        FiniteXferParams p;
        p.words = words;
        const auto res = proto.run(p);
        std::printf("%s\n", cycleTable("unit model", res.counts,
                                       CostModel::unit())
                                .c_str());
        std::printf("%s\n", cycleTable("CM-5 model (dev = 5 cycles)",
                                       res.counts, CostModel::cm5())
                                .c_str());
    }
    {
        banner("Appendix A cycle model: indefinite sequence, 1024 "
               "words, half OOO");
        Stack stack(paperCm5(/*halfOoo=*/true));
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 1024;
        const auto res = proto.run(p);
        std::printf("%s\n", cycleTable("unit model", res.counts,
                                       CostModel::unit())
                                .c_str());
        std::printf("%s\n", cycleTable("CM-5 model (dev = 5 cycles)",
                                       res.counts, CostModel::cm5())
                                .c_str());
        const double unit_ovh = res.counts.overheadFraction();
        const CostModel cm5 = CostModel::cm5();
        const double base = cm5.cycles(res.counts.src,
                                       Feature::BaseCost) +
                            cm5.cycles(res.counts.dst,
                                       Feature::BaseCost);
        const double total = cm5.cycles(res.counts);
        std::printf("overhead fraction: unit %s -> cm5 %s\n"
                    "(dev-heavy base cost grows under the weighted "
                    "model, so the *relative* software overhead "
                    "shrinks — improving the NI reverses this; see "
                    "bench_nidesign)\n",
                    pct(unit_ovh).c_str(),
                    pct((total - base) / total).c_str());
    }
    return 0;
}

/**
 * @file
 * Ablation: the price of software fault recovery on a
 * detection-only network versus hardware packet-level fault
 * tolerance.  Sweeps the packet drop rate in event-driven mode: the
 * CMAM stream retransmits from its source buffer on timeout; the CR
 * substrate retries in hardware, invisible to software.  Quantifies
 * §2.2's "limited fault-handling" cost beyond the paper's static
 * accounting.
 */

#include <cstdio>

#include "bench_common.hh"
#include "hlam/hl_stack.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Fault-rate sweep: 1024-word stream, event mode "
           "(CMAM/CM-5 vs high-level/CR)");
    std::printf("  %8s | %10s %8s %8s %9s | %10s %9s\n", "drop",
                "cmam instr", "retx", "dups", "elapsed", "hl instr",
                "hw retry");
    for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
        StackConfig cfg = paperCm5();
        cfg.faults.dropRate = rate;
        cfg.faults.seed = 404;
        Stack cm5(cfg);
        StreamProtocol proto(cm5);
        StreamParams p;
        p.words = 1024;
        p.eventMode = true;
        p.retxTimeout = 800;
        p.maxRetx = 4096;
        const auto rc = proto.run(p);

        HlStackConfig hcfg;
        hcfg.faults.dropRate = rate;
        hcfg.faults.seed = 404;
        HlStack hl(hcfg);
        HlStreamParams hp;
        hp.words = 1024;
        hp.eventMode = true;
        const auto rh = runHlStream(hl, hp);

        std::printf("  %7.0f%% | %10llu %8llu %8llu %9llu | %10llu "
                    "%9llu%s%s\n",
                    rate * 100,
                    static_cast<unsigned long long>(
                        rc.counts.paperTotal()),
                    static_cast<unsigned long long>(
                        rc.retransmissions),
                    static_cast<unsigned long long>(rc.duplicates),
                    static_cast<unsigned long long>(rc.elapsed),
                    static_cast<unsigned long long>(
                        rh.counts.paperTotal()),
                    static_cast<unsigned long long>(
                        hl.machine().network().stats().hwRetries),
                    rc.dataOk ? "" : "  [CMAM INTEGRITY FAILED]",
                    rh.dataOk ? "" : "  [HL INTEGRITY FAILED]");
    }
    std::printf("\nshape: software recovery cost (and latency) grows "
                "with the drop rate; the HL software bill stays flat "
                "while the hardware absorbs the retries\n");
    return 0;
}

/**
 * @file
 * Ablation for the paper's §5/§7 "paradox": improving the network
 * interface (cheaper dev accesses, on-chip NIs, DMA) only *raises*
 * the relative weight of the remaining software protocol overhead.
 * We sweep the dev-access weight from the CM-5's 5 cycles down to a
 * tightly-coupled NI's 1 cycle and report the overhead fraction of
 * the cycle-weighted cost for both CMAM protocols.
 */

#include <cstdio>

#include "bench_common.hh"
#include "model/analytic.hh"

using namespace msgsim;
using namespace msgsim::bench;

namespace
{

double
overheadUnder(const FeatureBreakdown &bd, const CostModel &m)
{
    double base = bd.at(Feature::BaseCost, Direction::Source)
                      .weighted(m) +
                  bd.at(Feature::BaseCost, Direction::Destination)
                      .weighted(m);
    const double total = bd.weightedTotal(m);
    return (total - base) / total;
}

} // namespace

int
main()
{
    banner("NI design ablation: software overhead fraction vs dev "
           "access cost (1024-word message, n = 4)");

    ProtoParams pp;
    pp.words = 1024;
    pp.oooFraction = 0.5;
    const auto fin = cmamFiniteModel(pp);
    const auto str = cmamStreamModel(pp);

    std::printf("  %-28s  %10s  %12s\n", "NI model (dev weight)",
                "finite", "indefinite");
    struct Ni
    {
        const char *name;
        double w;
    };
    const Ni nis[] = {
        {"CM-5 memory-mapped (5)", 5.0},
        {"improved bus NI (3)", 3.0},
        {"coprocessor NI (2)", 2.0},
        {"on-chip NI, reg-mapped (1)", 1.0},
    };
    for (const auto &ni : nis) {
        CostModel m{"sweep", 1.0, 1.0, ni.w};
        std::printf("  %-28s  %10s  %12s\n", ni.name,
                    pct(overheadUnder(fin, m)).c_str(),
                    pct(overheadUnder(str, m)).c_str());
    }
    std::printf(
        "\npaper §5: \"If the base cost is reduced, that increases "
        "the importance of the costs in the rest of the messaging "
        "layer\" — the overhead fraction RISES as the NI improves.\n");

    banner("Where high-level network services would leave us");
    ProtoParams p2 = pp;
    const auto hl = hlStreamModel(p2);
    for (double w : {5.0, 1.0}) {
        CostModel m{"sweep", 1.0, 1.0, w};
        std::printf("  dev weight %.0f: CMAM stream %.0f cycles vs "
                    "HL stream %.0f cycles (%.1fx)\n",
                    w, str.weightedTotal(m), hl.weightedTotal(m),
                    str.weightedTotal(m) / hl.weightedTotal(m));
    }
    return 0;
}

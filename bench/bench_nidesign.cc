/**
 * @file
 * NI design ablation — overhead fraction vs device access cost.
 * Thin wrapper over the registered lab experiment in
 * src/lab/experiments.cc (X3a).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"X3a"});
}

/**
 * @file
 * Window flow-control sweep: the indefinite-sequence protocol's
 * in-flight window versus achieved bandwidth on a link-serialized
 * network — the classic bandwidth-delay-product curve, showing why
 * end-to-end flow control (the paper's deadlock/overflow-safety
 * service) has a throughput price when implemented in software with
 * acknowledgement-paced windows.
 */

#include <cstdio>

#include "bench_common.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Ack-paced window sweep: 1024-word stream, link "
           "serialization 5 ticks/packet");
    std::printf("  %8s | %10s | %14s | %8s\n", "window", "elapsed",
                "words/kilotick", "acks");
    for (std::uint32_t w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 0u}) {
        StackConfig cfg = paperCm5();
        cfg.memWords = 1u << 24;
        cfg.injectGap = 5;
        cfg.deliverGap = 5;
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 1024;
        p.eventMode = true;
        p.window = w;
        p.retxTimeout = 200'000;
        const auto res = proto.run(p);
        const double bw =
            res.elapsed ? 1000.0 * 1024.0 /
                              static_cast<double>(res.elapsed)
                        : 0.0;
        char wlabel[16];
        if (w == 0)
            std::snprintf(wlabel, sizeof(wlabel), "inf");
        else
            std::snprintf(wlabel, sizeof(wlabel), "%u", w);
        std::printf("  %8s | %10llu | %14.1f | %8llu%s\n", wlabel,
                    static_cast<unsigned long long>(res.elapsed), bw,
                    static_cast<unsigned long long>(res.acksSent),
                    res.dataOk ? "" : "  [FAILED]");
    }
    std::printf("\nsmall windows idle the wire for a round trip per "
                "burst; once the window covers the bandwidth-delay "
                "product, throughput saturates at the serialization "
                "limit — hardware end-to-end flow control (CR) gets "
                "this without any window bookkeeping\n");
    return 0;
}

/**
 * @file
 * Table 1 of the paper — single-packet delivery instruction counts.
 * Thin wrapper over the registered lab experiment; the table logic
 * lives in src/lab/experiments.cc (T1).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"T1"});
}

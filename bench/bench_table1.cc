/**
 * @file
 * Reproduces paper Table 1: "Instruction counts for single-packet
 * delivery" — the row-by-row breakdown of the CMAM_4 send and
 * receive fast paths, regenerated from instrumented execution.
 * Paper values: source 20, destination 27.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/report.hh"
#include "protocols/single_packet.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Table 1: single-packet delivery (CMAM on CM-5-like "
           "network, n = 4)");

    Stack stack(paperCm5());
    Node &src = stack.node(0);
    Node &dst = stack.node(1);
    const auto res = runSinglePacket(stack, {});

    std::printf("%s\n",
                rowTable("Instruction counts for single-packet "
                         "delivery",
                         src.acct(), dst.acct())
                    .c_str());
    std::printf("paper: source = 20, destination = 27, total = 47\n");
    std::printf("measured: source = %llu, destination = %llu, "
                "total = %llu\n",
                static_cast<unsigned long long>(
                    res.counts.src.paperTotal()),
                static_cast<unsigned long long>(
                    res.counts.dst.paperTotal()),
                static_cast<unsigned long long>(
                    res.counts.paperTotal()));
    std::printf("data integrity: %s\n", res.dataOk ? "ok" : "FAILED");

    banner("Same path on the CR substrate (Section 4.1: identical, "
           "but ordered/safe/reliable)");
    StackConfig cr = paperCm5();
    cr.substrate = Substrate::Cr;
    Stack crstack(cr);
    const auto cres = runSinglePacket(crstack, {});
    std::printf("measured: source = %llu, destination = %llu\n",
                static_cast<unsigned long long>(
                    cres.counts.src.paperTotal()),
                static_cast<unsigned long long>(
                    cres.counts.dst.paperTotal()));
    return 0;
}

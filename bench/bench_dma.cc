/**
 * @file
 * Ablation for §5's DMA discussion: "while DMA hardware can reduce
 * the cost of moving large amounts of data ... this would also
 * reduce the base cost, increasing the importance of the software
 * messaging layers."  Runs the finite-sequence transfer with
 * programmed I/O and with DMA payload movement across packet sizes,
 * measured from live simulation.
 */

#include <cstdio>

#include "bench_common.hh"
#include "protocols/finite_xfer.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("DMA vs programmed I/O: finite sequence, 1024-word "
           "message");
    std::printf("  %6s | %10s %9s | %10s %9s\n", "n", "PIO instr",
                "overhead", "DMA instr", "overhead");
    for (int n : {4, 16, 64, 128}) {
        StackConfig pio_cfg = paperCm5();
        pio_cfg.dataWords = n;
        Stack pio(pio_cfg);
        FiniteXfer p1(pio);
        FiniteXferParams params;
        params.words = 1024;
        const auto r1 = p1.run(params);

        StackConfig dma_cfg = pio_cfg;
        dma_cfg.dmaXfer = true;
        Stack dma(dma_cfg);
        FiniteXfer p2(dma);
        params.dma = true;
        const auto r2 = p2.run(params);

        std::printf("  %6d | %10llu %9s | %10llu %9s%s%s\n", n,
                    static_cast<unsigned long long>(
                        r1.counts.paperTotal()),
                    pct(r1.counts.overheadFraction()).c_str(),
                    static_cast<unsigned long long>(
                        r2.counts.paperTotal()),
                    pct(r2.counts.overheadFraction()).c_str(),
                    r1.dataOk ? "" : " [PIO FAILED]",
                    r2.dataOk ? "" : " [DMA FAILED]");
    }
    std::printf("\nDMA shrinks the base cost (per-word ldd/std and "
                "FIFO traffic -> one descriptor per packet) but not "
                "one instruction of the handshake/ordering/ack "
                "machinery — the overhead FRACTION rises, which is "
                "exactly the paper's argument for fixing the network "
                "semantics instead\n");
    return 0;
}

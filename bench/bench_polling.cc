/**
 * @file
 * Ablation: calibration-mode ("execution paths which minimize the
 * instruction count", §3.2) versus event-driven execution.  The
 * paper's numbers assume each poll finds work; arrival-driven
 * execution pays extra poll entries and empty status checks.  This
 * bench quantifies that gap for both multi-packet protocols.
 */

#include <cstdio>

#include "bench_common.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Polling overhead: calibration (minimum path) vs "
           "event-driven execution");
    std::printf("  %-26s  %12s  %12s  %8s\n", "workload",
                "calibration", "event mode", "extra");

    for (std::uint32_t words : {16u, 256u, 1024u}) {
        Stack cal(paperCm5());
        FiniteXfer pcal(cal);
        FiniteXferParams p;
        p.words = words;
        const auto rc = pcal.run(p);

        Stack evt(paperCm5());
        FiniteXfer pevt(evt);
        p.eventMode = true;
        const auto re = pevt.run(p);

        char label[64];
        std::snprintf(label, sizeof(label), "finite %u words", words);
        std::printf("  %-26s  %12llu  %12llu  %7.1f%%%s\n", label,
                    static_cast<unsigned long long>(
                        rc.counts.paperTotal()),
                    static_cast<unsigned long long>(
                        re.counts.paperTotal()),
                    100.0 *
                        (static_cast<double>(re.counts.paperTotal()) /
                             static_cast<double>(
                                 rc.counts.paperTotal()) -
                         1.0),
                    re.dataOk ? "" : " [FAILED]");
    }

    for (std::uint32_t words : {16u, 256u, 1024u}) {
        Stack cal(paperCm5());
        StreamProtocol pcal(cal);
        StreamParams p;
        p.words = words;
        const auto rc = pcal.run(p);

        Stack evt(paperCm5());
        StreamProtocol pevt(evt);
        p.eventMode = true;
        const auto re = pevt.run(p);

        char label[64];
        std::snprintf(label, sizeof(label), "stream %u words", words);
        std::printf("  %-26s  %12llu  %12llu  %7.1f%%%s\n", label,
                    static_cast<unsigned long long>(
                        rc.counts.paperTotal()),
                    static_cast<unsigned long long>(
                        re.counts.paperTotal()),
                    100.0 *
                        (static_cast<double>(re.counts.paperTotal()) /
                             static_cast<double>(
                                 rc.counts.paperTotal()) -
                         1.0),
                    re.dataOk ? "" : " [FAILED]");
    }
    // With latency jitter, arrivals spread out and coalescing helps
    // less: each poll batch shrinks toward one packet, and the
    // per-poll entry cost (12 reg + 1 dev) piles up.
    for (Tick jitter : {0ull, 40ull, 200ull}) {
        Stack cal(paperCm5());
        StreamProtocol pcal(cal);
        StreamParams p;
        p.words = 256;
        const auto rc = pcal.run(p);

        StackConfig jcfg = paperCm5();
        jcfg.maxJitter = jitter;
        Stack evt(jcfg);
        StreamProtocol pevt(evt);
        p.eventMode = true;
        const auto re = pevt.run(p);

        char label[64];
        std::snprintf(label, sizeof(label),
                      "stream 256 w, jitter %llu",
                      static_cast<unsigned long long>(jitter));
        std::printf("  %-26s  %12llu  %12llu  %7.1f%%%s\n", label,
                    static_cast<unsigned long long>(
                        rc.counts.paperTotal()),
                    static_cast<unsigned long long>(
                        re.counts.paperTotal()),
                    100.0 *
                        (static_cast<double>(re.counts.paperTotal()) /
                             static_cast<double>(
                                 rc.counts.paperTotal()) -
                         1.0),
                    re.dataOk ? "" : " [FAILED]");
    }
    std::printf("\nthe paper's tables are the lower envelope; real "
                "arrival-driven schedules pay additional poll "
                "entries (charged per poll: 12 reg + 1 dev), and "
                "scattered arrivals defeat poll batching\n");
    return 0;
}

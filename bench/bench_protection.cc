/**
 * @file
 * Ablation for the paper's premise: "User-level access to the CM-5
 * network interface is essential for low-cost communication" (§3.1)
 * and the §5 note that protection is the issue any tens-of-
 * instructions design must face.  Re-runs the protocols with every
 * messaging call crossing into the kernel (trap + dispatch +
 * permission checks, 120 modeled instructions per crossing).
 */

#include <cstdio>

#include "bench_common.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("User-level vs kernel-mediated NI access");
    std::printf("  %-26s | %12s | %12s | %8s\n", "workload",
                "user-level", "kernel", "blowup");

    auto row = [](const char *label, std::uint64_t user,
                  std::uint64_t kernel) {
        std::printf("  %-26s | %12llu | %12llu | %7.2fx\n", label,
                    static_cast<unsigned long long>(user),
                    static_cast<unsigned long long>(kernel),
                    static_cast<double>(kernel) /
                        static_cast<double>(user));
    };

    {
        Stack u(paperCm5());
        const auto ru = runSinglePacket(u, {});
        StackConfig kc = paperCm5();
        kc.kernelMediated = true;
        Stack k(kc);
        const auto rk = runSinglePacket(k, {});
        row("single packet", ru.counts.paperTotal(),
            rk.counts.paperTotal());
    }
    for (std::uint32_t words : {16u, 1024u}) {
        Stack u(paperCm5());
        FiniteXfer pu(u);
        FiniteXferParams p;
        p.words = words;
        const auto ru = pu.run(p);

        StackConfig kc = paperCm5();
        kc.kernelMediated = true;
        Stack k(kc);
        FiniteXfer pk(k);
        const auto rk = pk.run(p);
        char label[64];
        std::snprintf(label, sizeof(label), "finite %u words", words);
        row(label, ru.counts.paperTotal(), rk.counts.paperTotal());
    }
    for (std::uint32_t words : {16u, 1024u}) {
        Stack u(paperCm5(true));
        StreamProtocol pu(u);
        StreamParams p;
        p.words = words;
        const auto ru = pu.run(p);

        StackConfig kc = paperCm5(true);
        kc.kernelMediated = true;
        Stack k(kc);
        StreamProtocol pk(k);
        const auto rk = pk.run(p);
        char label[64];
        std::snprintf(label, sizeof(label), "stream %u words", words);
        row(label, ru.counts.paperTotal(), rk.counts.paperTotal());
    }
    std::printf("\nper-packet user calls (the stream's sends) are "
                "crushed by per-call kernel crossings; batched calls "
                "(the xfer loop) amortize them — the design space "
                "the paper's user-level-NI premise avoids entirely\n");
    return 0;
}

/**
 * @file
 * Section 3.2's group-acknowledgement claim — ack-group sweep on the
 * indefinite protocol.  Thin wrapper over the registered lab
 * experiment in src/lab/experiments.cc (D1).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"D1"});
}

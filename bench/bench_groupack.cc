/**
 * @file
 * Reproduces the §3.2 discussion claim: "the overhead remains
 * significant (~40-50%) even if group acknowledgements are
 * employed."  Sweeps the ack group size G for the indefinite
 * -sequence protocol (1024 words, half the packets out of order)
 * and reports the fault-tolerance cost and the total overhead
 * fraction, measured from live simulation.
 */

#include <cstdio>

#include "bench_common.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Group acknowledgements: indefinite sequence, 1024 words, "
           "half OOO");
    std::printf("  %6s  %6s  %12s  %12s  %10s\n", "G", "acks",
                "fault-tol", "total", "overhead");
    for (int g : {1, 2, 4, 8, 16, 32, 64, 256}) {
        Stack stack(paperCm5(/*halfOoo=*/true));
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 1024;
        p.groupAck = g;
        const auto res = proto.run(p);
        const auto ft =
            res.counts.src.featureTotal(Feature::FaultTolerance) +
            res.counts.dst.featureTotal(Feature::FaultTolerance);
        std::printf("  %6d  %6llu  %12llu  %12llu  %10s%s\n", g,
                    static_cast<unsigned long long>(res.acksSent),
                    static_cast<unsigned long long>(ft),
                    static_cast<unsigned long long>(
                        res.counts.paperTotal()),
                    pct(res.counts.overheadFraction()).c_str(),
                    res.dataOk ? "" : "  [INTEGRITY FAILED]");
    }
    std::printf("\npaper: overhead stays ~40-50%% even with group "
                "acks (in-order costs dominate)\n");
    return 0;
}

/**
 * @file
 * Figure 6 of the paper — CMAM vs high-level network features.
 * Thin wrapper over the registered lab experiment in
 * src/lab/experiments.cc (F6).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"F6"});
}

/**
 * @file
 * Reproduces paper Figure 6: "Comparison of messaging layer costs" —
 * CMAM-based implementations (left bars) versus implementations atop
 * high-level network features (right bars), for the finite-sequence
 * and indefinite-sequence protocols at 16 and 1024 words, source and
 * destination sides.
 *
 * Paper claims: finite improves 10-50% depending on message size;
 * indefinite improves ~70% independent of size.
 */

#include <cstdio>

#include "bench_common.hh"
#include "hlam/hl_stack.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

namespace
{

void
bars(const char *label, std::uint64_t cmam, std::uint64_t hl)
{
    // Text rendering of one bar pair, scaled per row.
    const std::uint64_t maxv = cmam > hl ? cmam : hl;
    const int width = 46;
    auto bar = [&](std::uint64_t v) {
        const int len =
            maxv ? static_cast<int>(v * static_cast<std::uint64_t>(width)
                                    / maxv)
                 : 0;
        return std::string(static_cast<std::size_t>(len), '#');
    };
    std::printf("  %-10s CMAM %8llu |%-46s|\n", label,
                static_cast<unsigned long long>(cmam),
                bar(cmam).c_str());
    std::printf("  %-10s HL   %8llu |%-46s|\n", "",
                static_cast<unsigned long long>(hl), bar(hl).c_str());
}

} // namespace

int
main()
{
    for (std::uint32_t words : {16u, 1024u}) {
        banner("Figure 6 (left): finite sequence, " +
               std::to_string(words) + " words");
        Stack cm5(paperCm5());
        FiniteXfer fin(cm5);
        FiniteXferParams fp;
        fp.words = words;
        const auto rc = fin.run(fp);

        HlStackConfig hcfg;
        HlStack hl(hcfg);
        HlXferParams hp;
        hp.words = words;
        const auto rh = runHlFinite(hl, hp);

        bars("source", rc.counts.src.paperTotal(),
             rh.counts.src.paperTotal());
        bars("dest", rc.counts.dst.paperTotal(),
             rh.counts.dst.paperTotal());
        const double imp =
            1.0 - static_cast<double>(rh.counts.paperTotal()) /
                      static_cast<double>(rc.counts.paperTotal());
        std::printf("  total improvement: %s  (paper: 10-50%% by "
                    "message size)\n",
                    pct(imp).c_str());
    }

    for (std::uint32_t words : {16u, 1024u}) {
        banner("Figure 6 (right): indefinite sequence, " +
               std::to_string(words) + " words");
        Stack cm5(paperCm5(/*halfOoo=*/true));
        StreamProtocol str(cm5);
        StreamParams sp;
        sp.words = words;
        const auto rc = str.run(sp);

        HlStackConfig hcfg;
        HlStack hl(hcfg);
        HlStreamParams hp;
        hp.words = words;
        const auto rh = runHlStream(hl, hp);

        bars("source", rc.counts.src.paperTotal(),
             rh.counts.src.paperTotal());
        bars("dest", rc.counts.dst.paperTotal(),
             rh.counts.dst.paperTotal());
        const double imp =
            1.0 - static_cast<double>(rh.counts.paperTotal()) /
                      static_cast<double>(rc.counts.paperTotal());
        std::printf("  total improvement: %s  (paper: ~70%%, "
                    "independent of size)\n",
                    pct(imp).c_str());
    }
    return 0;
}

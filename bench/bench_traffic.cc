/**
 * @file
 * Machine-wide traffic experiment: active-message load under the
 * classic patterns (uniform random, permutation, hotspot, ring,
 * transpose) on a 32-node machine with finite link bandwidth.
 * Reports per-node software cost, load imbalance (hotspots
 * concentrate the 27-instruction receive bill), and completion time.
 */

#include <cstdio>

#include "bench_common.hh"
#include "traffic/traffic.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("AM traffic patterns: 32 nodes, 64 messages/node, link "
           "serialization 5 ticks/packet");
    std::printf("  %-16s | %8s | %12s | %10s | %9s | %8s\n",
                "pattern", "msgs", "instr/node", "imbalance",
                "elapsed", "status");
    for (auto pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Permutation,
          TrafficPattern::Hotspot, TrafficPattern::Ring,
          TrafficPattern::Transpose}) {
        StackConfig cfg = paperCm5();
        cfg.nodes = 32;
        cfg.injectGap = 5;
        cfg.deliverGap = 5;
        cfg.maxJitter = 10;
        Stack stack(cfg);
        TrafficRunner runner(stack);
        TrafficGen gen(32, pattern, 77);
        const auto res = runner.run(gen, 64);
        std::printf("  %-16s | %8llu | %12.0f | %9.2fx | %9llu | %8s\n",
                    toString(pattern),
                    static_cast<unsigned long long>(res.messages),
                    res.perNodeInstr.mean(), res.maxOverMean,
                    static_cast<unsigned long long>(res.elapsed),
                    res.ok ? "ok" : "FAILED");
    }
    std::printf(
        "\nimbalance = hottest node's instruction bill over the "
        "mean: hotspot traffic concentrates the per-packet receive "
        "cost (27 instructions each) on one processor — software "
        "overhead is also a load-balance problem\n");
    return 0;
}

/**
 * @file
 * End-to-end latency and achieved bandwidth versus message size —
 * the classic messaging-layer figure, run event-driven on a network
 * with finite link bandwidth (one packet leaves/arrives per
 * (n+1)-word serialization window).  Software overhead shows up as
 * the gap between the two substrates at equal hardware parameters.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/cost_model.hh"
#include "hlam/hl_stack.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Latency / bandwidth vs message size (event mode, link "
           "serialization = 5 ticks/packet)");
    std::printf("  %8s | %10s %12s | %10s %12s | %8s\n", "words",
                "cmam wire", "cmam sw", "hl wire", "hl sw",
                "sw ratio");
    for (std::uint32_t words : {16u, 64u, 256u, 1024u, 4096u}) {
        StackConfig cfg = paperCm5();
        cfg.memWords = 1u << 24;
        cfg.injectGap = 5;
        cfg.deliverGap = 5;
        Stack cm5(cfg);
        StreamProtocol proto(cm5);
        StreamParams p;
        p.words = words;
        p.eventMode = true;
        // The retransmission timeout must exceed the serialized
        // transfer time or spurious retransmissions kick in.
        p.retxTimeout = 100'000;
        const auto rc = proto.run(p);

        HlStackConfig hcfg;
        hcfg.memWords = 1u << 24;
        hcfg.injectGap = 5;
        hcfg.deliverGap = 5;
        HlStack hl(hcfg);
        HlStreamParams hp;
        hp.words = words;
        hp.eventMode = true;
        const auto rh = runHlStream(hl, hp);

        const CostModel cm5m = CostModel::cm5();
        const double sw_c = cm5m.cycles(rc.counts);
        const double sw_h = cm5m.cycles(rh.counts);
        std::printf("  %8u | %10llu %12.0f | %10llu %12.0f | %7.2fx"
                    "%s%s\n",
                    words,
                    static_cast<unsigned long long>(rc.elapsed), sw_c,
                    static_cast<unsigned long long>(rh.elapsed), sw_h,
                    sw_c / sw_h,
                    rc.dataOk ? "" : " [CMAM FAILED]",
                    rh.dataOk ? "" : " [HL FAILED]");
    }
    std::printf(
        "\nwire = simulated ticks to fully deliver AND acknowledge "
        "(both substrates saturate the same links); sw = modeled "
        "processor cycles under the Appendix A weighting.  §5: "
        "\"For cases where software overhead dominates, instruction "
        "counts are indicative of communication latency\" — the "
        "per-node software bill, not the wire, separates the "
        "substrates (ratio column), and it is the term that grows "
        "when nodes juggle many streams.\n");
    return 0;
}

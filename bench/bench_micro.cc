/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: packet
 * throughput through each substrate, protocol end-to-end runs, and
 * the accounting layer's charging rate.  These measure *our*
 * simulator (host wall-clock), not the modeled machine.
 */

#include <benchmark/benchmark.h>

#include "hlam/hl_stack.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/single_packet.hh"
#include "protocols/stream.hh"

namespace msgsim
{
namespace
{

void
BM_Cm5PacketDelivery(benchmark::State &state)
{
    Simulator sim;
    Cm5Network::Config cfg;
    cfg.nodes = 16;
    Cm5Network net(sim, cfg);
    std::uint64_t got = 0;
    net.attach(1, [&got](Packet &&) {
        ++got;
        return true;
    });
    for (auto _ : state) {
        net.inject(Packet(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4}));
        sim.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(got));
}
BENCHMARK(BM_Cm5PacketDelivery);

void
BM_CrPacketDelivery(benchmark::State &state)
{
    Simulator sim;
    CrNetwork::Config cfg;
    cfg.nodes = 16;
    CrNetwork net(sim, cfg);
    std::uint64_t got = 0;
    net.attach(1, [&got](Packet &&) {
        ++got;
        return true;
    });
    for (auto _ : state) {
        net.inject(Packet(0, 1, HwTag::UserAm, 0, {1, 2, 3, 4}));
        sim.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(got));
}
BENCHMARK(BM_CrPacketDelivery);

void
BM_SinglePacketAm(benchmark::State &state)
{
    StackConfig cfg;
    cfg.nodes = 2;
    Stack stack(cfg);
    const int h = stack.cmam(1).registerHandler(
        [](NodeId, const std::vector<Word> &) {});
    for (auto _ : state) {
        stack.cmam(0).am4(1, h, {1, 2, 3, 4});
        stack.settle();
        stack.cmam(1).poll();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SinglePacketAm);

void
BM_FiniteXfer(benchmark::State &state)
{
    const auto words = static_cast<std::uint32_t>(state.range(0));
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.memWords = 1u << 24;
    Stack stack(cfg);
    FiniteXfer proto(stack);
    for (auto _ : state) {
        FiniteXferParams p;
        p.words = words;
        benchmark::DoNotOptimize(proto.run(p));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * words * sizeof(Word)));
}
BENCHMARK(BM_FiniteXfer)->Arg(16)->Arg(1024)->Arg(16384);

void
BM_StreamHalfOoo(benchmark::State &state)
{
    const auto words = static_cast<std::uint32_t>(state.range(0));
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.memWords = 1u << 24;
    cfg.order = swapAdjacentFactory();
    Stack stack(cfg);
    StreamProtocol proto(stack);
    for (auto _ : state) {
        StreamParams p;
        p.words = words;
        benchmark::DoNotOptimize(proto.run(p));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * words * sizeof(Word)));
}
BENCHMARK(BM_StreamHalfOoo)->Arg(16)->Arg(1024);

void
BM_HlStream(benchmark::State &state)
{
    const auto words = static_cast<std::uint32_t>(state.range(0));
    HlStackConfig cfg;
    cfg.nodes = 2;
    cfg.memWords = 1u << 24;
    HlStack stack(cfg);
    for (auto _ : state) {
        HlStreamParams p;
        p.words = words;
        benchmark::DoNotOptimize(runHlStream(stack, p));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * words * sizeof(Word)));
}
BENCHMARK(BM_HlStream)->Arg(16)->Arg(1024);

void
BM_AccountingCharge(benchmark::State &state)
{
    Accounting a;
    for (auto _ : state) {
        a.charge(OpClass::Reg, 1);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_AccountingCharge);

void
BM_EventQueueChurn(benchmark::State &state)
{
    Simulator sim;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            sim.schedule(static_cast<Tick>(i % 7), [] {});
        sim.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 64));
}
BENCHMARK(BM_EventQueueChurn);

} // namespace
} // namespace msgsim

BENCHMARK_MAIN();

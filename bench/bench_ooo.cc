/**
 * @file
 * Ablation: in-order-delivery cost versus the fraction of packets
 * arriving out of order.  The paper measures one point (f = 1/2);
 * this sweep shows how the sequencing/reordering bill scales with
 * the network's delivery-order entropy — the quantitative version of
 * §5's warning that adaptive/randomizing routers buy routing
 * performance with software cycles.
 *
 * Measured from live simulation with the PairSwapChance policy
 * (expected OOO fraction = swap chance / 2) plus the analytic model.
 */

#include <cstdio>

#include "bench_common.hh"
#include "model/analytic.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Out-of-order fraction sweep: indefinite sequence, 4096 "
           "words (1024 packets)");
    std::printf("  %8s  %10s  %14s  %14s  %10s\n", "target f",
                "actual f", "in-order cost", "model", "overhead");
    for (double f : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        StackConfig cfg = paperCm5();
        if (f > 0)
            cfg.order = pairSwapChanceFactory(f / (1.0 - f), 987);
        Stack stack(cfg);
        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 4096;
        const auto res = proto.run(p);
        const double actual =
            static_cast<double>(res.oooArrivals) /
            static_cast<double>(res.packets);

        ProtoParams pp;
        pp.words = 4096;
        pp.oooFraction = actual; // model at the realized fraction
        const double model_ord =
            cmamStreamModel(pp).featureTotal(
                Feature::InOrderDelivery);
        const auto ord =
            res.counts.src.featureTotal(Feature::InOrderDelivery) +
            res.counts.dst.featureTotal(Feature::InOrderDelivery);
        std::printf("  %8.2f  %10.3f  %14llu  %14.0f  %10s%s\n", f,
                    actual, static_cast<unsigned long long>(ord),
                    model_ord,
                    pct(res.counts.overheadFraction()).c_str(),
                    res.dataOk ? "" : "  [INTEGRITY FAILED]");
    }
    std::printf("\nshape: in-order cost grows ~linearly in f; even "
                "f = 0 pays sequencing (2 reg + 3 mem per packet at "
                "the source, 6 reg at the destination)\n");
    return 0;
}

/**
 * @file
 * In-order-delivery cost vs out-of-order fraction.  Thin wrapper over
 * the registered lab experiment in src/lab/experiments.cc (X1).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"X1"});
}

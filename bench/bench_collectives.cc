/**
 * @file
 * Application-level consequence of single-packet costs: collective
 * operations built on active messages.  Reports message counts,
 * per-node instruction bills, and simulated completion time versus
 * machine size — the layer where the paper's 20+27 instructions per
 * packet get multiplied by log2(N) rounds.
 */

#include <cstdio>

#include "bench_common.hh"
#include "coll/collectives.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Collectives on active messages: cost vs machine size");
    std::printf("  %6s | %22s | %22s | %22s\n", "nodes",
                "barrier (msg/instr/t)", "bcast (msg/instr/t)",
                "allreduce (msg/instr/t)");
    for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
        StackConfig cfg;
        cfg.nodes = n;
        Stack stack(cfg);
        Collectives coll(stack);

        const auto bar = coll.barrier();
        std::vector<Word> out;
        const auto bc = coll.broadcast(0, 42, out);
        std::vector<Word> in(n, 1), all;
        const auto ar =
            coll.allReduce(Collectives::ReduceOp::Sum, in, all);

        auto cell = [](const Collectives::CollResult &r) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%4llu %8llu %6llu%s",
                          static_cast<unsigned long long>(r.messages),
                          static_cast<unsigned long long>(
                              r.instructions),
                          static_cast<unsigned long long>(r.elapsed),
                          r.ok ? "" : "!");
            return std::string(buf);
        };
        std::printf("  %6u | %22s | %22s | %22s\n", n,
                    cell(bar).c_str(), cell(bc).c_str(),
                    cell(ar).c_str());
    }
    std::printf("\nper-node barrier cost grows as log2(N) x "
                "(send 20 + recv 27 + handler work): the paper's "
                "single-packet numbers are the coin these algorithms "
                "spend\n");
    return 0;
}

/**
 * @file
 * Reproduces paper Figure 8.
 *
 * Left: the generalized breakdown of CMAM costs as formulas in the
 * packet size n and packet count p, printed symbolically and
 * evaluated — cross-checked against live simulation at several
 * (n, p) points.
 *
 * Right: messaging-layer overhead (non-base fraction of the total
 * software cost) versus packet size for 1024 words of communication,
 * n = 4..128.  Paper claims: indefinite-sequence overhead remains
 * significant over the whole range; finite-sequence overhead is
 * ~9-11%.
 *
 * Also prints the abstract's headline: 50-70% of cost is overhead in
 * all cases except large finite-sequence transfers.
 */

#include <cstdio>

#include "bench_common.hh"
#include "model/analytic.hh"
#include "protocols/finite_xfer.hh"
#include "protocols/stream.hh"

using namespace msgsim;
using namespace msgsim::bench;

int
main()
{
    banner("Figure 8 (left): generalized CMAM cost formulas "
           "(h = n/2, p = packets/message)");
    std::printf(
        "finite sequence:\n"
        "  src base  = 3 + p*(15 reg + h mem + (h+3) dev)\n"
        "  dst base  = 18 + p*(12 reg + h mem + (h+2) dev)\n"
        "  buf mgmt  = 47 (src) + 101 (dst)        [4-word ctl pkts]\n"
        "  in-order  = 2p (src) + 3p+1 (dst)       [reg]\n"
        "  fault-tol = 27 (src) + 20 (dst)         [end-to-end ack]\n"
        "indefinite sequence (f = OOO fraction, G = ack group):\n"
        "  src base  = p*(14 reg + 1 mem + (h+3) dev)\n"
        "  dst base  = 13 + p*(10 reg + (h+2) dev)\n"
        "  in-order  = p*(2 reg + 3 mem) (src)\n"
        "            + p*(2 + 4(1-f) + 27f reg, f*(19+n) mem) (dst)\n"
        "  fault-tol = p*(6 reg + h mem) + ceil(p/G)*(16 reg + 5 dev) "
        "(src)\n"
        "            + [G>1: 2p reg] + ceil(p/G)*(14 reg + 1 mem + 5 "
        "dev) (dst)\n\n");

    std::printf("model vs simulation cross-check (total "
                "instructions, 1024 words):\n");
    std::printf("  %6s  %10s  %10s  %12s  %12s\n", "n", "fin(model)",
                "fin(sim)", "indef(model)", "indef(sim)");
    for (int n : {4, 8, 16, 32}) {
        ProtoParams pp;
        pp.n = n;
        pp.words = 1024;
        pp.oooFraction = 0.5;
        const double fm = cmamFiniteModel(pp).grandTotal();
        const double sm = cmamStreamModel(pp).grandTotal();

        StackConfig cfg = paperCm5();
        cfg.dataWords = n;
        Stack s1(cfg);
        FiniteXfer fin(s1);
        FiniteXferParams fp;
        fp.words = 1024;
        const auto rf = fin.run(fp);

        StackConfig cfg2 = paperCm5(true);
        cfg2.dataWords = n;
        Stack s2(cfg2);
        StreamProtocol str(s2);
        StreamParams sp;
        sp.words = 1024;
        const auto rs = str.run(sp);

        std::printf("  %6d  %10.0f  %10llu  %12.0f  %12llu\n", n, fm,
                    static_cast<unsigned long long>(
                        rf.counts.paperTotal()),
                    sm,
                    static_cast<unsigned long long>(
                        rs.counts.paperTotal()));
    }

    banner("Figure 8 (right): messaging overhead vs packet size, "
           "1024-word message");
    std::printf("  %6s  %22s  %22s\n", "n", "finite overhead",
                "indefinite overhead");
    for (int n : {4, 8, 16, 32, 64, 128}) {
        ProtoParams pp;
        pp.n = n;
        pp.words = 1024;
        pp.oooFraction = 0.5;
        const double fo = cmamFiniteModel(pp).overheadFraction();
        const double so = cmamStreamModel(pp).overheadFraction();
        auto bar = [](double frac) {
            std::string s(static_cast<std::size_t>(frac * 20), '#');
            return s;
        };
        std::printf("  %6d  %7s |%-12s|  %7s |%-12s|\n", n,
                    pct(fo).c_str(), bar(fo).c_str(), pct(so).c_str(),
                    bar(so).c_str());
    }
    std::printf("\npaper: finite ~9-11%%, indefinite remains "
                "significant across 4-128\n");

    banner("Abstract claim: overhead is 50-70% of software cost");
    struct Row
    {
        const char *what;
        double frac;
    };
    ProtoParams p16;
    p16.words = 16;
    ProtoParams p1024;
    p1024.words = 1024;
    const Row rows[] = {
        {"finite, 16 words", cmamFiniteModel(p16).overheadFraction()},
        {"finite, 1024 words (the exception, §3.3)",
         cmamFiniteModel(p1024).overheadFraction()},
        {"indefinite, 16 words",
         cmamStreamModel(p16).overheadFraction()},
        {"indefinite, 1024 words",
         cmamStreamModel(p1024).overheadFraction()},
    };
    for (const auto &r : rows)
        std::printf("  %-42s %s\n", r.what, pct(r.frac).c_str());
    return 0;
}

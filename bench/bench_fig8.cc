/**
 * @file
 * Figure 8 of the paper — generalized costs vs packet size, plus the
 * abstract's 50-70% overhead claim.  Thin wrapper over the registered
 * lab experiments in src/lab/experiments.cc (F8, D2).
 */

#include "lab/bench_main.hh"

int
main(int argc, char **argv)
{
    return msgsim::lab::labBenchMain(argc, argv, {"F8", "D2"});
}

/**
 * @file
 * Classic ping-pong over the tag-matched message-passing library
 * (the CMMD/MPI-style layer built on CMAM) — the canonical
 * point-to-point microbenchmark of message-passing machines.
 * Reports per-round-trip software instruction cost and simulated
 * latency versus message size, on both substrates' cost models.
 *
 *   $ ./ping_pong [rounds] [--trace-out=trace.json]
 *                          [--metrics-out=metrics.json]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cost_model.hh"
#include "msglib/msg_passing.hh"
#include "net/tracer.hh"
#include "sim/obs_cli.hh"

using namespace msgsim;

int
main(int argc, char **argv)
{
    const obs::Options obsOpts = obs::parseArgs(argc, argv);
    obs::Scope scope(obsOpts);
    int rounds = 8;
    if (argc > 1)
        rounds = std::atoi(argv[1]);

    std::printf("%8s  %14s  %14s  %12s\n", "words",
                "instr/roundtrip", "cycles(dev=5)", "sim ticks");
    for (std::uint32_t words : {4u, 16u, 64u, 256u, 1024u}) {
        StackConfig cfg;
        cfg.nodes = 2;
        cfg.memWords = 1u << 24;
        Stack stack(cfg);
        PacketTracer tracer(1u << 14);
        if (scope.tracing()) {
            // One stack per message size: rebind the clock and bridge
            // the hardware events of the current network.
            scope.bindClock(stack.sim());
            stack.network().setTracer(&tracer);
            attachTraceBridge(tracer, *scope.session());
        }
        MsgPassing mp(stack);
        Node &a = stack.node(0);
        Node &b = stack.node(1);
        const Addr abuf = a.mem().alloc(words);
        const Addr bbuf = b.mem().alloc(words);
        for (std::uint32_t i = 0; i < words; ++i)
            a.mem().write(abuf + i, i);

        const std::uint64_t i0 = a.acct().counter().paperTotal() +
                                 b.acct().counter().paperTotal();
        const Tick t0 = stack.sim().now();
        bool ok = true;
        for (int r = 0; r < rounds && ok; ++r) {
            // ping: 0 -> 1
            auto rh = mp.postRecv(1, bbuf, words, 1);
            auto sh = mp.send(0, 1, abuf, words, 1);
            ok = mp.waitSend(sh) && mp.recvDone(rh);
            // pong: 1 -> 0
            auto rh2 = mp.postRecv(0, abuf, words, 2);
            auto sh2 = mp.send(1, 0, bbuf, words, 2);
            ok = ok && mp.waitSend(sh2) && mp.recvDone(rh2);
        }
        const std::uint64_t instr =
            (a.acct().counter().paperTotal() +
             b.acct().counter().paperTotal() - i0) /
            static_cast<std::uint64_t>(rounds);
        const double ticks =
            static_cast<double>(stack.sim().now() - t0) / rounds;

        // Cycle estimate under the Appendix A CM-5 weighting.
        BreakdownCounter bd;
        bd.src = a.acct().counter();
        bd.dst = b.acct().counter();
        const double cycles =
            CostModel::cm5().cycles(bd) / rounds;
        std::printf("%8u  %14llu  %14.0f  %12.0f%s\n", words,
                    static_cast<unsigned long long>(instr), cycles,
                    ticks, ok ? "" : "  [FAILED]");
        scope.collect(stack.sim(), "sim.w" + std::to_string(words));
        stack.network().setTracer(nullptr);
    }
    std::printf("\neach round trip = 2 x (rendezvous handshake + "
                "offset-stamped data + end-to-end ack) on the "
                "CMAM/CM-5 stack\n");
    return 0;
}

/**
 * @file
 * A socket-like ordered stream between two processes — the paper's
 * indefinite-sequence workload — run event-driven over a hostile
 * network: randomized latency (out-of-order arrivals), packet drops,
 * and corruption.  The protocol's sequence numbers, reorder buffer,
 * source buffering, acks, and retransmission timers deliver the
 * stream intact and in order anyway, and the instruction accounting
 * shows what that costs.
 *
 *   $ ./stream_channel [words] [dropRate%]
 */

#include <cstdio>
#include <cstdlib>

#include "core/report.hh"
#include "protocols/stream.hh"

using namespace msgsim;

int
main(int argc, char **argv)
{
    std::uint32_t words = 512;
    double drop = 0.05;
    if (argc > 1)
        words = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        drop = std::atof(argv[2]) / 100.0;
    if (words == 0 || words % 4 != 0) {
        std::fprintf(stderr, "words must be a positive multiple of 4\n");
        return 1;
    }

    StackConfig cfg;
    cfg.nodes = 2;
    cfg.memWords = 1u << 24;
    cfg.maxJitter = 30; // adaptive-routing-style delivery scrambling
    cfg.faults.dropRate = drop;
    cfg.faults.corruptRate = drop / 2;
    cfg.faults.seed = 7;
    Stack stack(cfg);
    StreamProtocol proto(stack);

    StreamParams p;
    p.words = words;
    p.eventMode = true;
    p.retxTimeout = 800;
    p.maxRetx = 4096;
    p.groupAck = 4;
    p.window = 16;

    std::printf("streaming %u words over a network with %0.1f%% drops, "
                "%0.1f%% corruption, and latency jitter...\n\n",
                words, drop * 100, drop * 50);
    const auto res = proto.run(p);

    std::printf("%s\n", featureTable("indefinite-sequence stream",
                                     res.counts)
                            .c_str());
    std::printf("packets:            %llu\n",
                static_cast<unsigned long long>(res.packets));
    std::printf("out-of-order:       %llu\n",
                static_cast<unsigned long long>(res.oooArrivals));
    std::printf("acks sent:          %llu\n",
                static_cast<unsigned long long>(res.acksSent));
    std::printf("retransmissions:    %llu\n",
                static_cast<unsigned long long>(res.retransmissions));
    std::printf("duplicates dropped: %llu\n",
                static_cast<unsigned long long>(res.duplicates));
    std::printf("simulated time:     %llu ticks\n",
                static_cast<unsigned long long>(res.elapsed));
    std::printf("delivered in order: %s\n",
                res.dataOk ? "yes — byte-exact" : "NO (bug!)");
    std::printf("\nnetwork saw: %llu injected, %llu dropped, %llu "
                "corrupted (CRC-discarded at the NI)\n",
                static_cast<unsigned long long>(
                    stack.network().stats().injected),
                static_cast<unsigned long long>(
                    stack.network().stats().dropped),
                static_cast<unsigned long long>(
                    stack.network().stats().corrupted));
    return res.dataOk ? 0 : 1;
}

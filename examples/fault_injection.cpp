/**
 * @file
 * Fault-handling demo: the same faulty traffic on the two substrates.
 *
 * The CM-5-like network *detects* bad packets (CRC at the NI) but
 * corrects nothing — software sees silence where a packet should
 * have been and must buffer, time out, and retransmit.  The CR-style
 * network retries at the packet level in hardware; software never
 * notices.  This example scripts specific faults and narrates what
 * each layer of the system observed.
 *
 *   $ ./fault_injection
 */

#include <cstdio>

#include "hlam/hl_stack.hh"
#include "protocols/stream.hh"

using namespace msgsim;

int
main()
{
    std::printf("== detection-only network (CM-5-like) ==\n\n");
    {
        StackConfig cfg;
        cfg.nodes = 2;
        Stack stack(cfg);
        auto *net = dynamic_cast<Cm5Network *>(&stack.network());
        // Script: drop the 3rd data packet, corrupt the 6th.
        net->faults().scriptDrop(2);
        net->faults().scriptCorrupt(5);

        StreamProtocol proto(stack);
        StreamParams p;
        p.words = 64; // 16 packets
        p.eventMode = true;
        p.retxTimeout = 500;
        const auto res = proto.run(p);

        std::printf("injected %llu packets; network silently lost 1 "
                    "and corrupted 1\n",
                    static_cast<unsigned long long>(
                        stack.network().stats().injected));
        std::printf("the NI's CRC check discarded %llu bad packet(s) "
                    "— detection without correction\n",
                    static_cast<unsigned long long>(
                        stack.node(1).ni().crcDiscards()));
        std::printf("software recovery: %llu retransmission(s), %llu "
                    "duplicate(s) re-acked\n",
                    static_cast<unsigned long long>(
                        res.retransmissions),
                    static_cast<unsigned long long>(res.duplicates));
        std::printf("fault-tolerance instructions: %llu of %llu "
                    "total (%.1f%%)\n",
                    static_cast<unsigned long long>(
                        res.counts.featureTotal(
                            Feature::FaultTolerance)),
                    static_cast<unsigned long long>(
                        res.counts.paperTotal()),
                    100.0 *
                        static_cast<double>(res.counts.featureTotal(
                            Feature::FaultTolerance)) /
                        static_cast<double>(res.counts.paperTotal()));
        std::printf("stream delivered intact: %s\n\n",
                    res.dataOk ? "yes" : "NO");
    }

    std::printf("== packet-level fault-tolerant network (CR-like) "
                "==\n\n");
    {
        HlStackConfig cfg;
        cfg.nodes = 2;
        // Much harsher conditions: 20% drops, 10% corruption.
        cfg.faults.dropRate = 0.20;
        cfg.faults.corruptRate = 0.10;
        cfg.faults.seed = 99;
        HlStack stack(cfg);
        HlStreamParams p;
        p.words = 64;
        const auto res = runHlStream(stack, p);

        std::printf("the hardware retried %llu time(s); software "
                    "executed ZERO fault-tolerance instructions "
                    "(measured: %llu)\n",
                    static_cast<unsigned long long>(
                        stack.machine().network().stats().hwRetries),
                    static_cast<unsigned long long>(
                        res.counts.featureTotal(
                            Feature::FaultTolerance)));
        std::printf("stream delivered intact and in order: %s\n",
                    res.dataOk ? "yes" : "NO");
    }
    return 0;
}

/**
 * @file
 * Network-design explorer: the paper's §5 trade-off calculator.
 *
 * Given a hardware packet size, a message size, and an NI access
 * cost, prints the modeled software bill of each protocol/substrate
 * combination and the verdict on which network features pay for
 * themselves.  Useful for asking "what if my network delivered out
 * of order but my NI were on-chip?" style questions.
 *
 *   $ ./netdesign_explorer [packetWords] [messageWords] [devWeight]
 */

#include <cstdio>
#include <cstdlib>

#include "model/analytic.hh"

using namespace msgsim;

int
main(int argc, char **argv)
{
    int n = 4;
    std::uint32_t words = 1024;
    double dev_weight = 5.0;
    if (argc > 1)
        n = std::atoi(argv[1]);
    if (argc > 2)
        words = static_cast<std::uint32_t>(std::atoi(argv[2]));
    if (argc > 3)
        dev_weight = std::atof(argv[3]);
    if (n < 4 || n % 2 != 0 ||
        words % static_cast<std::uint32_t>(n) != 0) {
        std::fprintf(stderr,
                     "need: even packetWords >= 4, messageWords a "
                     "multiple of packetWords\n");
        return 1;
    }

    const CostModel m{"custom", 1.0, 1.0, dev_weight};
    ProtoParams p;
    p.n = n;
    p.words = words;
    p.oooFraction = 0.5;

    std::printf("packet = %d words, message = %u words (%u packets), "
                "NI access = %.1f cycles\n\n",
                n, words, p.packets(), dev_weight);

    struct Row
    {
        const char *name;
        FeatureBreakdown bd;
    };
    const Row rows[] = {
        {"CMAM finite-sequence", cmamFiniteModel(p)},
        {"CMAM indefinite-sequence", cmamStreamModel(p)},
        {"HL finite-sequence", hlFiniteModel(p)},
        {"HL indefinite-sequence", hlStreamModel(p)},
    };

    std::printf("%-28s %12s %12s %10s\n", "protocol", "instructions",
                "cycles", "overhead");
    for (const auto &r : rows)
        std::printf("%-28s %12.0f %12.0f %9.1f%%\n", r.name,
                    r.bd.grandTotal(), r.bd.weightedTotal(m),
                    r.bd.overheadFraction() * 100.0);

    std::printf("\nverdicts:\n");
    const double fin_save = hlImprovement(cmamFiniteModel(p),
                                          hlFiniteModel(p));
    const double str_save = hlImprovement(cmamStreamModel(p),
                                          hlStreamModel(p));
    std::printf("  in-order + flow control + packet-level FT in "
                "hardware saves %.0f%% on bulk transfers and %.0f%% "
                "on streams\n",
                fin_save * 100.0, str_save * 100.0);

    // Out-of-order routing's software bill (f = 0.5 vs f = 0).
    ProtoParams ordered = p;
    ordered.oooFraction = 0.0;
    const double ooo_cost = cmamStreamModel(p).grandTotal() -
                            cmamStreamModel(ordered).grandTotal();
    std::printf("  adaptive/out-of-order routing costs the stream "
                "protocol %.0f extra software instructions per "
                "message (%.1f per packet) — weigh that against the "
                "routing-latency benefit\n",
                ooo_cost, ooo_cost / p.packets());
    return 0;
}

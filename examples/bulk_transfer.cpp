/**
 * @file
 * Bulk memory-to-memory transfer — the workload that motivates the
 * paper's finite-sequence protocol.  Moves a buffer from node 0 to
 * node 1 twice: once over the CMAM/CM-5 stack (handshake + offsets +
 * ack) and once over the high-level-features stack (just send it),
 * then compares the bills.
 *
 *   $ ./bulk_transfer [words] [--trace-out=trace.json]
 *                             [--metrics-out=metrics.json]
 *
 * With --trace-out the run records cross-layer spans (protocol
 * steps, CMAM send/poll, NI events) plus the hardware packet events
 * from a PacketTracer bridged onto the same timeline, and writes a
 * Chrome trace-event JSON loadable in Perfetto.
 */

#include <cstdio>
#include <cstdlib>

#include "core/report.hh"
#include "hlam/hl_stack.hh"
#include "net/tracer.hh"
#include "protocols/finite_xfer.hh"
#include "sim/obs_cli.hh"

using namespace msgsim;

int
main(int argc, char **argv)
{
    const obs::Options obsOpts = obs::parseArgs(argc, argv);
    std::uint32_t words = 1024;
    if (argc > 1)
        words = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (words == 0 || words % 4 != 0) {
        std::fprintf(stderr, "words must be a positive multiple of 4\n");
        return 1;
    }

    std::printf("bulk transfer of %u words (%u packets)\n\n", words,
                words / 4);

    obs::Scope scope(obsOpts);

    // --- CMAM on the CM-5-like network --------------------------
    StackConfig cfg;
    cfg.nodes = 2;
    cfg.memWords = 1u << 24;
    Stack cm5(cfg);
    PacketTracer tracer(1u << 14);
    if (scope.tracing()) {
        scope.bindClock(cm5.sim());
        cm5.network().setTracer(&tracer);
        attachTraceBridge(tracer, *scope.session());
    }
    FiniteXfer proto(cm5);
    FiniteXferParams p;
    p.words = words;
    const auto rc = proto.run(p);
    std::printf("%s", featureTable("CMAM finite-sequence protocol "
                                   "(6 steps: request, allocate, "
                                   "reply, data, free, ack)",
                                   rc.counts)
                          .c_str());
    std::printf("integrity: %s\n\n", rc.dataOk ? "ok" : "FAILED");
    scope.collect(cm5.sim(), "sim.cm5");
    for (NodeId id = 0; id < 2; ++id)
        cm5.node(id).ni().publishMetrics(scope.metrics(), "ni.cm5");

    // --- High-level features on the CR network ------------------
    HlStackConfig hcfg;
    hcfg.nodes = 2;
    hcfg.memWords = 1u << 24;
    HlStack hl(hcfg);
    PacketTracer hlTracer(1u << 14);
    if (scope.tracing()) {
        // The second stack has its own simulator: rebind the trace
        // clock so its spans stay on a consistent timeline.
        scope.bindClock(hl.sim());
        hl.machine().network().setTracer(&hlTracer);
        attachTraceBridge(hlTracer, *scope.session());
    }
    HlXferParams hp;
    hp.words = words;
    const auto rh = runHlFinite(hl, hp);
    std::printf("%s", featureTable("High-level-features protocol "
                                   "(just inject; the header packet "
                                   "sizes the buffer)",
                                   rh.counts)
                          .c_str());
    std::printf("integrity: %s\n\n", rh.dataOk ? "ok" : "FAILED");
    scope.collect(hl.sim(), "sim.hl");
    for (NodeId id = 0; id < 2; ++id)
        hl.node(id).ni().publishMetrics(scope.metrics(), "ni.hl");

    const double imp =
        1.0 - static_cast<double>(rh.counts.paperTotal()) /
                  static_cast<double>(rc.counts.paperTotal());
    std::printf("software instructions saved by in-order + "
                "flow-controlled + reliable hardware: %.1f%%\n",
                imp * 100.0);
    return 0;
}

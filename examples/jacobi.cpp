/**
 * @file
 * A real message-passing application: 1-D Jacobi relaxation (heat
 * diffusion) partitioned across the machine — the "C or FORTRAN and
 * message passing" workload of the paper's §2.1, exercising the whole
 * stack end to end:
 *
 *  - per-iteration halo exchange with the tag-matched
 *    rendezvous library (msglib),
 *  - global residual via the collectives' allreduce,
 *  - fixed-point arithmetic in node memory (every value lives in the
 *    simulated machine, not the host).
 *
 * Prints the residual as it converges and the messaging bill the
 * application paid for it.
 *
 *   $ ./jacobi [nodes] [cellsPerNode] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "coll/collectives.hh"
#include "msglib/msg_passing.hh"

using namespace msgsim;

namespace
{

/// Fixed-point scale: values are stored as value * 2^16.
constexpr Word fxOne = 1u << 16;

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t nodes = 8;
    std::uint32_t cells = 64; // interior cells per node
    int iterations = 30;
    if (argc > 1)
        nodes = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        cells = static_cast<std::uint32_t>(std::atoi(argv[2]));
    if (argc > 3)
        iterations = std::atoi(argv[3]);

    StackConfig cfg;
    cfg.nodes = nodes;
    cfg.memWords = 1u << 22;
    Stack stack(cfg);
    MsgPassing mp(stack);
    Collectives coll(stack);

    // Per-node arrays in simulated memory: u and u_next with one
    // ghost cell at each end, plus 4-word halo staging buffers
    // (packet-size granularity).
    struct NodeState
    {
        Addr u, unext, haloL, haloR, ghostL, ghostR;
    };
    std::vector<NodeState> st(nodes);
    for (NodeId i = 0; i < nodes; ++i) {
        Memory &m = stack.node(i).mem();
        st[i].u = m.alloc(cells + 2);
        st[i].unext = m.alloc(cells + 2);
        st[i].haloL = m.alloc(4);
        st[i].haloR = m.alloc(4);
        st[i].ghostL = m.alloc(4);
        st[i].ghostR = m.alloc(4);
        // Initial condition: a hot spike at the global left edge,
        // cold everywhere else; fixed boundary values.
        for (std::uint32_t c = 0; c < cells + 2; ++c)
            m.write(st[i].u + c, 0);
        if (i == 0)
            m.write(st[i].u + 1, 100 * fxOne);
    }

    std::printf("1-D Jacobi on %u nodes x %u cells, %d iterations\n\n",
                nodes, cells, iterations);

    const std::uint64_t instr0 = [&] {
        std::uint64_t s = 0;
        for (NodeId i = 0; i < nodes; ++i)
            s += stack.node(i).acct().counter().paperTotal();
        return s;
    }();

    for (int it = 0; it < iterations; ++it) {
        // --- halo exchange: every interior boundary swaps one cell
        // (padded to a 4-word packet) with its neighbor, tag-matched
        // by iteration parity so iterations cannot cross-talk.
        const Word tagR = 2 * static_cast<Word>(it) % 1000 + 1;
        const Word tagL = tagR + 1;
        std::vector<MsgPassing::SendHandle> sends;
        for (NodeId i = 0; i < nodes; ++i) {
            Memory &m = stack.node(i).mem();
            m.write(st[i].haloR, m.read(st[i].u + cells));
            m.write(st[i].haloL, m.read(st[i].u + 1));
            if (i + 1 < nodes) {
                mp.postRecv(i, st[i].ghostR, 4, tagL, i + 1);
                sends.push_back(
                    mp.send(i, i + 1, st[i].haloR, 4, tagR));
            }
            if (i > 0) {
                mp.postRecv(i, st[i].ghostL, 4, tagR, i - 1);
                sends.push_back(
                    mp.send(i, i - 1, st[i].haloL, 4, tagL));
            }
        }
        bool ok = mp.progressUntil([&] {
            for (auto h : sends)
                if (!mp.sendDone(h))
                    return false;
            return true;
        });
        if (!ok) {
            std::printf("halo exchange stalled at iteration %d\n", it);
            return 1;
        }

        // --- local relaxation + local residual, in simulated memory.
        std::vector<Word> local_resid(nodes, 0);
        for (NodeId i = 0; i < nodes; ++i) {
            Memory &m = stack.node(i).mem();
            if (i > 0)
                m.write(st[i].u + 0, m.read(st[i].ghostL));
            if (i + 1 < nodes)
                m.write(st[i].u + cells + 1, m.read(st[i].ghostR));
            Word resid = 0;
            for (std::uint32_t c = 1; c <= cells; ++c) {
                const Word left = m.read(st[i].u + c - 1);
                const Word right = m.read(st[i].u + c + 1);
                const Word next = (left >> 1) + (right >> 1);
                const Word old = m.read(st[i].u + c);
                resid += next > old ? next - old : old - next;
                m.write(st[i].unext + c, next);
            }
            // Pinned global boundaries.
            if (i == 0)
                m.write(st[i].unext + 1, 100 * fxOne);
            for (std::uint32_t c = 1; c <= cells; ++c)
                m.write(st[i].u + c, m.read(st[i].unext + c));
            local_resid[i] = resid >> 8; // keep the sum in 32 bits
        }

        // --- global residual via allreduce.
        std::vector<Word> out;
        if (!coll.allReduce(Collectives::ReduceOp::Sum, local_resid,
                            out)
                 .ok) {
            std::printf("allreduce failed at iteration %d\n", it);
            return 1;
        }
        if (it % 5 == 0 || it == iterations - 1)
            std::printf("  iter %3d: residual = %10.2f\n", it,
                        static_cast<double>(out[0]) * 256.0 / fxOne);
    }

    std::uint64_t instr1 = 0;
    for (NodeId i = 0; i < nodes; ++i)
        instr1 += stack.node(i).acct().counter().paperTotal();
    std::printf("\nmessaging bill: %llu instructions total (%.0f per "
                "node per iteration)\n",
                static_cast<unsigned long long>(instr1 - instr0),
                static_cast<double>(instr1 - instr0) /
                    (static_cast<double>(nodes) * iterations));
    std::printf("(halo exchange = 2 rendezvous messages/node/iter; "
                "residual = 1 allreduce/iter — all riding the "
                "20+27-instruction packet primitive)\n");
    return 0;
}

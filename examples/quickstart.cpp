/**
 * @file
 * Quickstart: build a 4-node CM-5-like machine, send an active
 * message, and look at where the instructions went.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/report.hh"
#include "protocols/single_packet.hh"

using namespace msgsim;

int
main()
{
    // 1. A machine: 4 nodes on a CM-5-like fat tree (out-of-order,
    //    finite buffering, fault detection only), 4-word packets,
    //    with a CMAM-style active message layer on every node.
    StackConfig cfg;
    cfg.substrate = Substrate::Cm5;
    cfg.nodes = 4;
    Stack stack(cfg);

    // 2. Register a handler on the receiving node.  Handlers get the
    //    sender's id and the packet's data words.
    const int print_handler = stack.cmam(1).registerHandler(
        [](NodeId src, const std::vector<Word> &args) {
            std::printf("node 1: AM from node %u: %u %u %u %u\n", src,
                        args[0], args[1], args[2], args[3]);
        });

    // 3. Send an active message from node 0 and poll it in on node 1.
    //    Everything the messaging layer executes is charged to the
    //    nodes' instruction accounts.
    {
        FeatureScope fs(stack.node(0).acct(), Feature::BaseCost);
        stack.cmam(0).am4(1, print_handler, {10, 20, 30, 40});
    }
    stack.settle(); // run the network simulation to quiescence
    {
        FeatureScope fs(stack.node(1).acct(), Feature::BaseCost);
        stack.cmam(1).poll();
    }

    // 4. Where did the time go?  (Table 1 of Karamcheti & Chien:
    //    20 instructions to send, 27 to receive.)
    std::printf("\n%s", rowTable("single-packet delivery",
                                 stack.node(0).acct(),
                                 stack.node(1).acct())
                            .c_str());

    // 5. The same counts, under the Appendix A cycle model where a
    //    memory-mapped NI access costs 5 cycles.
    BreakdownCounter bd;
    bd.src = stack.node(0).acct().counter();
    bd.dst = stack.node(1).acct().counter();
    std::printf("\n%s", cycleTable("modeled cycles", bd,
                                   CostModel::cm5())
                            .c_str());
    return 0;
}

/**
 * @file
 * Global sum across a whole machine — the "coordinate their efforts"
 * workload of the paper's introduction, expressed with the
 * collectives library (dissemination barrier, binomial broadcast and
 * combining trees) on top of active messages.
 *
 *   $ ./allreduce [nodes]
 */

#include <cstdio>
#include <cstdlib>

#include "coll/collectives.hh"
#include "sim/rng.hh"

using namespace msgsim;

int
main(int argc, char **argv)
{
    std::uint32_t nodes = 16;
    if (argc > 1)
        nodes = static_cast<std::uint32_t>(std::atoi(argv[1]));

    StackConfig cfg;
    cfg.nodes = nodes;
    cfg.maxJitter = 10; // a little delivery-order chaos, why not
    Stack stack(cfg);
    Collectives coll(stack);

    // Every node contributes a pseudo-random local result.
    std::vector<Word> local(nodes);
    Rng rng(2026);
    Word expect = 0;
    for (auto &v : local) {
        v = static_cast<Word>(rng.below(10000));
        expect += v;
    }

    std::printf("allreduce(sum) across %u nodes...\n", nodes);
    std::vector<Word> result;
    const auto res =
        coll.allReduce(Collectives::ReduceOp::Sum, local, result);
    if (!res.ok) {
        std::printf("FAILED to complete\n");
        return 1;
    }
    bool agree = true;
    for (Word v : result)
        agree = agree && v == expect;
    std::printf("  result on every node: %u (%s)\n", result[0],
                agree ? "all agree, correct" : "MISMATCH");
    std::printf("  messages:             %llu\n",
                static_cast<unsigned long long>(res.messages));
    std::printf("  total instructions:   %llu (%.1f per node)\n",
                static_cast<unsigned long long>(res.instructions),
                static_cast<double>(res.instructions) / nodes);
    std::printf("  simulated time:       %llu ticks\n",
                static_cast<unsigned long long>(res.elapsed));

    const auto bar = coll.barrier();
    std::printf("\nbarrier: %llu messages, %.1f instructions per "
                "node, %llu ticks\n",
                static_cast<unsigned long long>(bar.messages),
                static_cast<double>(bar.instructions) / nodes,
                static_cast<unsigned long long>(bar.elapsed));
    return agree ? 0 : 1;
}

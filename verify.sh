#!/usr/bin/env bash
# Repo verification: build, run the test suite, then drive one traced
# example end-to-end and check that the exported Chrome trace is
# valid JSON containing the six finite-xfer protocol steps and the
# bridged hardware packet events.
#
#   ./verify.sh                  full: configure + build + ctest + traced run
#                                + lab golden/determinism gate
#   ./verify.sh --quick <binary> only the traced-run check, against an
#                                already-built bulk_transfer binary
#                                (this is what the CTest hook uses;
#                                it must NOT recurse into ctest)
#   ./verify.sh --sanitize       build tier-1 tests under ASan+UBSan
#                                in a separate build tree and run them
#   ./verify.sh --check          only the model-checker gate, against
#                                an already-built build/ tree
#   ./verify.sh --prof           only the profiler gate, against an
#                                already-built build/ tree: msgsim-prof
#                                on both substrates, the differential
#                                table against its committed golden,
#                                and a BENCH_throughput.json refresh
#   ./verify.sh --hostprof       only the host self-profiler gate:
#                                H1 against its golden, msgsim-selfprof
#                                on the P1 workload (share sum, top-3,
#                                folded grammar), and the wall-clock
#                                append to the bench trajectory
#   ./verify.sh --traffic        only the traffic gate: W1 (the
#                                golden-free predicted-vs-measured
#                                grid) byte-identical across -j,
#                                msgsim-traffic --predict smokes on
#                                every substrate, and the incast /
#                                alltoall bench trajectory entries
#   ./verify.sh --wire           only the wire-layer gate: F1 (the
#                                per-feature framing bill) against its
#                                golden and byte-identical across -j,
#                                a CRC-corruption recovery smoke, the
#                                rdma framing-vanishes assertion, and
#                                the framed-bytes/s trajectory entry
#   ./verify.sh --tele           only the telemetry gate: O1 (sampled
#                                scenarios + track digests) against
#                                its golden and byte-identical across
#                                -j, the Perfetto ph:"C" counter-track
#                                schema check, a heatmap/report smoke,
#                                and the samples/s trajectory entry
set -euo pipefail

repo_dir="$(cd "$(dirname "$0")" && pwd)"

check_traced_run() {
    local binary="$1"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    "$binary" 64 --trace-out="$tmpdir/trace.json" \
        --metrics-out="$tmpdir/metrics.json" > "$tmpdir/stdout.txt"
    grep -q "integrity: ok" "$tmpdir/stdout.txt"

    python3 - "$tmpdir/trace.json" "$tmpdir/metrics.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
names = {(e.get("cat"), e.get("name")) for e in events}

steps = ["alloc_req", "seg_alloc", "alloc_reply", "data",
         "seg_free", "ack"]
missing = [s for s in steps if ("finite_xfer", s) not in names]
assert not missing, f"missing finite_xfer steps: {missing}"

hw = {n for c, n in names if c == "hw"}
assert {"inject", "deliver"} <= hw, f"missing hw instants: {hw}"

spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete spans exported"
assert all("ts" in e and "dur" in e for e in spans)

metrics = json.load(open(sys.argv[2]))["metrics"]
mnames = {m["name"] for m in metrics}
assert any(n.startswith("trace.span.finite_xfer") for n in mnames), \
    f"span phase counters absent from the metrics dump: {sorted(mnames)[:8]}"
assert any(n.endswith("events_dispatched") for n in mnames)

print(f"trace ok: {len(events)} events, {len(spans)} spans, "
      f"{len(metrics)} metrics")
EOF
}

check_lab() {
    local lab="$repo_dir/build/src/lab/msgsim-lab"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # Golden gate: every deterministic experiment must reproduce the
    # checked-in paper cells, at full parallelism.
    (cd "$repo_dir" && "$lab" --all --check-golden -j 8 --quiet)

    # Determinism gate: -j 1 and -j 8 artifacts must be byte-identical.
    "$lab" --all -j 1 --quiet --json-out="$tmpdir/j1"
    "$lab" --all -j 8 --quiet --json-out="$tmpdir/j8"
    diff -r "$tmpdir/j1" "$tmpdir/j8"
    echo "lab ok: golden gate + byte-deterministic sweep"
}

check_model_checker() {
    local chk="$repo_dir/build/src/check/msgsim-check"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # Bounded-exhaustive exploration of the core protocols must come
    # back clean...
    "$chk" --protocol=single_packet --packets=3 --faults=1 \
        --depth=12 --quiet
    "$chk" --protocol=stream --packets=3 --faults=1 --depth=8 --quiet
    "$chk" --protocol=socket --packets=3 --faults=1 --depth=6 --quiet

    # ... including on the modern substrates: rdma constrains the
    # schedule space to reliable in-order interleavings (the QP
    # guarantee), nicam keeps the full CM-5 drop/duplicate space and
    # software recovery must still be exactly-once.
    "$chk" --protocol=single_packet --substrate=rdma --packets=4 \
        --depth=12 --quiet
    "$chk" --protocol=single_packet --substrate=nicam --packets=3 \
        --faults=1 --fault-kinds=5 --depth=12 --quiet
    "$chk" --protocol=stream --substrate=nicam --packets=3 \
        --faults=1 --depth=8 --quiet

    # ... the report must be byte-deterministic ...
    "$chk" --protocol=stream --packets=3 --faults=2 --depth=5 \
        --walks=50 --seed=7 --quiet --json-out="$tmpdir/a.json"
    "$chk" --protocol=stream --packets=3 --faults=2 --depth=5 \
        --walks=50 --seed=7 --quiet --json-out="$tmpdir/b.json"
    cmp "$tmpdir/a.json" "$tmpdir/b.json"

    # ... the seeded bug must be caught and shrunk ...
    if "$chk" --protocol=stream --packets=3 --faults=1 --depth=8 \
        --bug --quiet --ce-out="$tmpdir/ce.json"; then
        echo "model checker FAILED to catch the seeded bug" >&2
        return 1
    fi
    "$chk" --replay="$tmpdir/ce.json" --quiet

    # ... and every committed counterexample must still reproduce.
    local replay
    for replay in "$repo_dir"/tests/replays/*.json; do
        "$chk" --replay="$replay" --quiet
    done
    echo "check ok: exhaustive exploration clean, deterministic, bug caught + replayed"
}

check_prof() {
    local prof="$repo_dir/build/src/prof/msgsim-prof"
    local lab="$repo_dir/build/src/lab/msgsim-lab"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # A profiled run on each substrate produces the full artifact
    # set: folded stacks, waterfall, trace with lineage flows.
    local sub
    for sub in cm5 cr; do
        "$prof" --protocol=xfer --substrate="$sub" \
            --flame-out="$tmpdir/$sub.folded" \
            --waterfall-out="$tmpdir/$sub.waterfall" \
            --trace-out="$tmpdir/$sub.trace.json" > /dev/null
        grep -q ';base_cost;' "$tmpdir/$sub.folded"
        grep -q 'send_sw' "$tmpdir/$sub.waterfall"
        grep -q '"ph":"s"' "$tmpdir/$sub.trace.json"
        grep -q '"bp":"e"' "$tmpdir/$sub.trace.json"
    done

    # The differential table must match the committed golden (the
    # same pattern as the --check gate's pinned counterexamples).
    "$prof" --protocol=xfer --substrate=cm5 --baseline=cr \
        --json-out="$tmpdir/diff.json" > /dev/null
    cmp "$tmpdir/diff.json" \
        "$repo_dir/tests/golden/prof_differential.json"

    # The modern columns of the substrate x feature matrix: on rdma
    # the 1994 overheads vanish while completion-poll and
    # registration appear; on nicam the host dispatch bill vanishes.
    "$prof" --protocol=xfer --substrate=rdma --baseline \
        --json-out="$tmpdir/rdma.json" > /dev/null
    "$prof" --protocol=xfer --substrate=nicam --baseline \
        --json-out="$tmpdir/nicam.json" > /dev/null
    python3 - "$tmpdir/rdma.json" "$tmpdir/nicam.json" <<'EOF'
import json, sys

rdma = json.load(open(sys.argv[1]))
feats = {f["feature"]: f for f in rdma["features"]}
assert feats["buffer_mgmt"]["status"] == "vanishes", feats
assert feats["in_order"]["status"] == "vanishes", feats
assert feats["completion_poll"]["status"] == "appears", feats
assert feats["registration"]["status"] == "appears", feats
assert feats["completion_poll"]["baseline"] > 0, feats
assert feats["registration"]["baseline"] > 0, feats

nicam = json.load(open(sys.argv[2]))
disp = nicam["dispatch_ops"]
assert disp["primary"] > 0 and disp["baseline"] == 0, disp
assert disp["status"] == "vanishes", disp

print("matrix ok: rdma columns appear, nicam dispatch vanishes")
EOF

    # The full 4-substrate x 4-protocol matrix is pinned as the M1
    # golden (byte-deterministic instruction counts).
    (cd "$repo_dir" && "$lab" M1 --check-golden --quiet)

    # Refresh the perf trajectory: P1 now times the profiled
    # comparison as its fifth wall-clock point.
    (cd "$repo_dir" && "$lab" --bench-out=BENCH_throughput.json \
        --bench-label=p1 --quiet P1 > /dev/null)
    echo "prof ok: artifacts produced, differential matches golden"
}

check_hostprof() {
    local selfprof="$repo_dir/build/src/hostprof/msgsim-selfprof"
    local lab="$repo_dir/build/src/lab/msgsim-lab"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # The deterministic host-cost experiment must reproduce its
    # golden: scope/alloc counts are pinned, cycle costs are not.
    (cd "$repo_dir" && "$lab" H1 --check-golden --quiet)

    # A profiled P1 workload must produce a breakdown whose shares
    # sum to 100% (+-1%), name a top-3, and export well-formed
    # folded stacks and JSON.
    "$selfprof" --workload=p1 --packets=50000 \
        --flame-out="$tmpdir/host.folded" \
        --json-out="$tmpdir/host.json" > "$tmpdir/stdout.txt"

    python3 - "$tmpdir/host.json" "$tmpdir/host.folded" \
        "$tmpdir/stdout.txt" <<'EOF'
import json, re, sys

doc = json.load(open(sys.argv[1]))
subs = doc["profile"]["subsystems"]
share = sum(s["share"] for s in subs)
assert abs(share - 1.0) <= 0.01, f"shares sum to {share}, not 1"
active = [s for s in subs if s["enters"] > 0]
assert len(active) >= 3, f"only {len(active)} active subsystems"
scopes = doc["profile"]["scopes"]
assert scopes["balanced"] and scopes["enters"] == scopes["exits"]
assert scopes["root_cycles"] > 0

# Folded grammar: ';'-joined space-free frames, ONE space, a count.
for line in open(sys.argv[2]):
    line = line.rstrip("\n")
    assert re.fullmatch(r"[^ ;]+(;[^ ;]+)+ \d+", line), \
        f"bad folded line: {line!r}"
    assert line.startswith("host;"), f"bad prefix: {line!r}"

text = open(sys.argv[3]).read()
assert "top cost centers:" in text, "selfprof report lacks a top-3"
assert "shares sum" in text, "selfprof report lacks the share sum"

print(f"selfprof ok: {len(active)} active subsystems, "
      f"share sum {share:.4f}, {scopes['enters']} scopes")
EOF

    # Append the selfprof wall-clock entry; the trajectory must keep
    # at least two labelled entries (p1 refresh + selfprof).
    (cd "$repo_dir" && "$selfprof" --workload=p1 --packets=50000 \
        --bench-append=BENCH_throughput.json \
        --bench-label=selfprof > /dev/null)
    python3 - "$repo_dir/BENCH_throughput.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
entries = doc["entries"]
labels = [e["label"] for e in entries]
assert len(entries) >= 2, f"trajectory has {len(entries)} entries"
assert "selfprof" in labels, f"selfprof entry missing: {labels}"
print(f"bench trajectory ok: {len(entries)} entries {labels}")
EOF
    echo "hostprof ok: H1 golden, shares ~100%, trajectory appended"
}

check_traffic() {
    local traffic="$repo_dir/build/src/traffic/msgsim-traffic"
    local lab="$repo_dir/build/src/lab/msgsim-lab"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # W1: the analytic predictor gates the full pattern x protocol x
    # substrate grid with zero drift — golden-free by design (the
    # model IS the reference) but required byte-identical across -j.
    (cd "$repo_dir" && "$lab" W1 -j 1 --quiet --json-out="$tmpdir/j1")
    (cd "$repo_dir" && "$lab" W1 -j 8 --quiet --json-out="$tmpdir/j8")
    cmp "$tmpdir/j1/W1.json" "$tmpdir/j8/W1.json"
    if grep -q DRIFT "$tmpdir/j1/W1.json"; then
        echo "W1 reports predicted-vs-measured DRIFT" >&2
        return 1
    fi

    # The CLI gate on every substrate: --predict exits non-zero on
    # any disagreement between the charged run and the model.
    local sub
    for sub in cm5 cr rdma nicam; do
        "$traffic" --pattern=incast --substrate="$sub" \
            --protocol=acked --nodes=8 --msgs=4 --size=5 \
            --predict --quiet
        "$traffic" --pattern=alltoall --substrate="$sub" \
            --protocol=seq --nodes=8 --msgs=4 --size=3 --jitter=5 \
            --predict --quiet
    done

    # Wall-clock throughput points for the perf trajectory: the two
    # headline datacenter patterns.
    (cd "$repo_dir" && "$traffic" --pattern=incast --substrate=rdma \
        --protocol=acked --nodes=16 --msgs=64 --size=8 --quiet \
        --bench-out=BENCH_throughput.json --bench-label=incast)
    (cd "$repo_dir" && "$traffic" --pattern=alltoall --substrate=cm5 \
        --protocol=am --nodes=16 --msgs=32 --size=8 --quiet \
        --bench-out=BENCH_throughput.json --bench-label=alltoall)
    python3 - "$repo_dir/BENCH_throughput.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
labels = [e["label"] for e in doc["entries"]]
assert "incast" in labels and "alltoall" in labels, labels
print(f"bench trajectory ok: {labels}")
EOF
    echo "traffic ok: W1 drift-free + byte-identical, CLI gate green on all substrates"
}

check_wire() {
    local wire="$repo_dir/build/src/wire/msgsim-wire"
    local lab="$repo_dir/build/src/lab/msgsim-lab"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # F1: the per-feature framing bill on all four substrates, clean
    # and under CRC corruption, must reproduce its golden and be
    # byte-identical across -j.
    (cd "$repo_dir" && "$lab" F1 --check-golden --quiet)
    (cd "$repo_dir" && "$lab" F1 -j 1 --quiet --json-out="$tmpdir/j1")
    (cd "$repo_dir" && "$lab" F1 -j 8 --quiet --json-out="$tmpdir/j8")
    cmp "$tmpdir/j1/F1.json" "$tmpdir/j8/F1.json"

    # CRC-corruption smoke: flipping every 3rd DATA frame's CRC must
    # produce rejects, wire retransmits, and still a complete
    # in-order delivery — plus the rdma offload assertion: the same
    # clean workload's framing bill must collapse (>= 10x) on rdma
    # while the classic four columns stay identical.
    "$wire" --substrate=cm5 --corrupt-every=3 --quiet \
        --json-out="$tmpdir/corrupt.json"
    "$wire" --substrate=cm5 --quiet --json-out="$tmpdir/cm5.json"
    "$wire" --substrate=rdma --quiet --json-out="$tmpdir/rdma.json"
    python3 - "$tmpdir/corrupt.json" "$tmpdir/cm5.json" \
        "$tmpdir/rdma.json" <<'EOF'
import json, sys

def row(path):
    doc = json.load(open(path))
    return dict(zip(doc["columns"], doc["rows"][0]))

corrupt, cm5, rdma = (row(p) for p in sys.argv[1:4])
assert corrupt["ok"] == "ok", corrupt
assert corrupt["crc rej"] > 0, corrupt
assert corrupt["retx"] > 0, corrupt
assert corrupt["delivered"] == corrupt["frames"], corrupt

assert cm5["ok"] == "ok" and rdma["ok"] == "ok"
assert rdma["framing"] * 10 <= cm5["framing"], (cm5, rdma)
for col in ("base", "buffer", "inorder", "fault", "delivered"):
    assert cm5[col] == rdma[col], (col, cm5, rdma)

print(f"wire ok: crc rej {corrupt['crc rej']}, retx {corrupt['retx']}, "
      f"framing cm5 {cm5['framing']} vs rdma {rdma['framing']}")
EOF

    # Framed-bytes/s wall-clock point for the perf trajectory.
    (cd "$repo_dir" && "$wire" --substrate=cm5 --streams=8 \
        --frames=64 --quiet --bench-out=BENCH_throughput.json \
        --bench-label=wire)
    python3 - "$repo_dir/BENCH_throughput.json" <<'EOF'
import json, sys
labels = [e["label"] for e in json.load(open(sys.argv[1]))["entries"]]
assert "wire" in labels, labels
print(f"bench trajectory ok: {labels}")
EOF
    echo "wire ok: F1 golden + byte-identical, corruption recovered, rdma offload holds"
}

check_tele() {
    local tele="$repo_dir/build/src/tele/msgsim-tele"
    local lab="$repo_dir/build/src/lab/msgsim-lab"
    local tmpdir
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' RETURN

    # O1: the sampled congestion scenarios — simulation results
    # (which must be sampler-invariant), bottleneck verdicts and the
    # golden-pinned track digests — against the committed golden, and
    # byte-identical across -j.
    (cd "$repo_dir" && "$lab" O1 --check-golden --quiet)
    (cd "$repo_dir" && "$lab" O1 -j 1 --quiet --json-out="$tmpdir/j1")
    (cd "$repo_dir" && "$lab" O1 -j 8 --quiet --json-out="$tmpdir/j8")
    cmp "$tmpdir/j1/O1.json" "$tmpdir/j8/O1.json"

    # The CLI end to end: summary JSON byte-identical across two
    # runs, heatmap + report emitted, and the counter-track timeline
    # a valid Chrome trace of ph:"C" samples over every layer.
    "$tele" --scenario=incast --substrate=cm5 --quiet \
        --json-out="$tmpdir/a.json" --heatmap-out="$tmpdir/heat.txt" \
        --report-out="$tmpdir/report.txt" \
        --timeline-out="$tmpdir/timeline.json"
    "$tele" --scenario=incast --substrate=cm5 --quiet \
        --json-out="$tmpdir/b.json"
    cmp "$tmpdir/a.json" "$tmpdir/b.json"
    grep -q 'ni.recv_ring\[0\]' "$tmpdir/heat.txt"
    grep -q 'NI recv ring' "$tmpdir/report.txt"

    "$tele" --scenario=incast --substrate=rdma --quiet \
        --report-out="$tmpdir/rdma-report.txt"
    grep -q 'completion queue' "$tmpdir/rdma-report.txt"

    python3 - "$tmpdir/timeline.json" "$tmpdir/heat.txt.json" \
        "$tmpdir/report.txt.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
assert counters, "no ph:'C' counter samples exported"
assert all("ts" in e and "name" in e and "args" in e
           for e in counters), "malformed counter record"
layers = {e["name"].split("/")[-1].split(".")[0] for e in counters}
assert {"sim", "link", "ni", "traffic"} <= layers, \
    f"missing counter layers: {sorted(layers)}"

heat = json.load(open(sys.argv[2]))
assert heat["bins"] > 0 and heat["rows"], heat.keys()
assert all(len(r["values"]) == heat["bins"] for r in heat["rows"])

report = json.load(open(sys.argv[3]))
assert report["top_resource"] == "ni.recv_ring[0]", report
assert report["saturated"], "report found no saturated windows"

print(f"timeline ok: {len(counters)} counter samples over "
      f"{len(layers)} layers; report names {report['top_resource']}")
EOF

    # Sampling-throughput wall-clock point for the perf trajectory.
    (cd "$repo_dir" && "$tele" --scenario=incast --substrate=rdma \
        --quiet --bench-out=BENCH_throughput.json --bench-label=tele)
    python3 - "$repo_dir/BENCH_throughput.json" <<'EOF'
import json, sys
labels = [e["label"] for e in json.load(open(sys.argv[1]))["entries"]]
assert "tele" in labels, labels
print(f"bench trajectory ok: {labels}")
EOF
    echo "tele ok: O1 golden + byte-identical, counter timeline valid, bottlenecks attributed"
}

if [[ "${1:-}" == "--tele" ]]; then
    check_tele
    echo "verify --tele: OK"
    exit 0
fi

if [[ "${1:-}" == "--wire" ]]; then
    check_wire
    echo "verify --wire: OK"
    exit 0
fi

if [[ "${1:-}" == "--traffic" ]]; then
    check_traffic
    echo "verify --traffic: OK"
    exit 0
fi

if [[ "${1:-}" == "--check" ]]; then
    check_model_checker
    echo "verify --check: OK"
    exit 0
fi

if [[ "${1:-}" == "--prof" ]]; then
    check_prof
    echo "verify --prof: OK"
    exit 0
fi

if [[ "${1:-}" == "--hostprof" ]]; then
    check_hostprof
    echo "verify --hostprof: OK"
    exit 0
fi

if [[ "${1:-}" == "--quick" ]]; then
    [[ $# -eq 2 ]] || { echo "usage: $0 --quick <bulk_transfer>" >&2; exit 2; }
    check_traced_run "$2"
    echo "verify --quick: OK"
    exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
    cd "$repo_dir"
    cmake -B build-sanitize -S . \
        -DMSGSIM_ASAN=ON -DMSGSIM_UBSAN=ON > /dev/null
    cmake --build build-sanitize -j"$(nproc)"
    (cd build-sanitize && ctest --output-on-failure -j"$(nproc)")
    echo "verify --sanitize: OK"
    exit 0
fi

cd "$repo_dir"
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")
check_traced_run "$repo_dir/build/examples/bulk_transfer"
check_lab
check_model_checker
check_prof
check_hostprof
check_traffic
check_wire
check_tele
echo "verify: OK"
